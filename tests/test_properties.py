"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core import action_entropy, hadamard_matrix, max_entropy
from repro.core.policies import VoltagePolicy, pareto_front
from repro.env import MINECRAFT_SUBTASKS, MINECRAFT_SUITE, EmbodiedWorld, NUM_ACTIONS, WorldConfig
from repro.faults import UniformErrorModel, to_signed, to_unsigned
from repro.hardware import DigitalLDO, EnergyModel, SystolicArray, GemmWorkload, TimingErrorModel
from repro.nn import Tensor
from repro.nn.functional import softmax
from repro.quant import INT8, compute_scale, dequantize, quantize

finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestQuantizationProperties:
    @given(st.lists(finite_floats, min_size=2, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_half_lsb(self, values):
        values = np.asarray(values)
        assume(np.abs(values).max() > 1e-6)
        params = compute_scale(values)
        recovered = dequantize(quantize(values, params), params)
        assert np.abs(recovered - values).max() <= 0.5 * params.scale + 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=64), st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_quantization_is_scale_equivariant(self, values, factor):
        values = np.asarray(values)
        assume(np.abs(values).max() > 1e-3)
        params = compute_scale(values)
        scaled_params = compute_scale(values * factor)
        np.testing.assert_allclose(quantize(values, params),
                                   quantize(values * factor, scaled_params))


class TestBitLevelProperties:
    @given(st.lists(st.integers(-(2 ** 23), 2 ** 23 - 1), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_unsigned_view_is_within_width(self, values):
        unsigned = to_unsigned(np.asarray(values, dtype=np.int64))
        assert unsigned.min() >= 0
        assert unsigned.max() < 2 ** 24

    @given(st.integers(0, 2 ** 24 - 1))
    @settings(max_examples=60, deadline=None)
    def test_signed_view_is_within_range(self, pattern):
        signed = to_signed(np.array([pattern]))[0]
        assert -(2 ** 23) <= signed <= 2 ** 23 - 1


class TestErrorModelProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_uniform_model_mean_equals_ber(self, ber):
        model = UniformErrorModel(ber)
        assert abs(model.mean_rate() - ber) < 1e-12

    @given(st.floats(min_value=0.61, max_value=0.9), st.floats(min_value=0.61, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_timing_model_monotone_in_voltage(self, v1, v2):
        model = TimingErrorModel()
        low, high = min(v1, v2), max(v1, v2)
        assert model.mean_bit_error_rate(low) >= model.mean_bit_error_rate(high) - 1e-15


class TestEntropyProperties:
    @given(st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False),
                    min_size=2, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, logits):
        value = action_entropy(np.asarray(logits))
        assert -1e-9 <= value <= max_entropy(len(logits)) + 1e-9

    @given(st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False),
                    min_size=2, max_size=24),
           st.floats(min_value=-5, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_entropy_shift_invariant(self, logits, shift):
        logits = np.asarray(logits)
        assert action_entropy(logits) == np.float64(action_entropy(logits + shift)).round(9) \
            or abs(action_entropy(logits) - action_entropy(logits + shift)) < 1e-6

    @given(st.lists(st.floats(min_value=-30, max_value=30, allow_nan=False),
                    min_size=2, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_a_distribution(self, logits):
        probs = softmax(np.asarray(logits))
        assert probs.min() >= 0
        assert abs(probs.sum() - 1.0) < 1e-9


class TestRotationProperties:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_hadamard_rotation_preserves_norm(self, power, rows):
        dim = 2 ** power
        rng = np.random.default_rng(rows)
        x = rng.normal(size=(rows, dim))
        rotated = x @ hadamard_matrix(dim)
        np.testing.assert_allclose(np.linalg.norm(rotated, axis=-1),
                                   np.linalg.norm(x, axis=-1), atol=1e-9)


class TestPolicyProperties:
    @given(st.floats(min_value=0.0, max_value=5.0), st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_policy_monotone_non_increasing(self, e1, e2):
        policy = VoltagePolicy("p", (0.5, 1.0, 1.5), (0.82, 0.80, 0.78, 0.76))
        low, high = min(e1, e2), max(e1, e2)
        assert policy.voltage_for_entropy(low) >= policy.voltage_for_entropy(high)

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0.6, 0.9)), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_pareto_front_members_are_not_dominated(self, points):
        success = np.array([p[0] for p in points])
        voltage = np.array([p[1] for p in points])
        front = pareto_front(success, voltage)
        assert front  # at least one non-dominated point always exists
        for i in front:
            dominated = np.any((success >= success[i]) & (voltage <= voltage[i])
                               & ((success > success[i]) | (voltage < voltage[i])))
            assert not dominated


class TestHardwareProperties:
    @given(st.integers(1, 512), st.integers(1, 2048), st.integers(1, 2048))
    @settings(max_examples=40, deadline=None)
    def test_systolic_cycles_at_least_ideal(self, m, k, n):
        array = SystolicArray()
        schedule = array.schedule(GemmWorkload(m, k, n))
        ideal = m * k * n / array.config.num_pes
        assert schedule.cycles >= ideal
        assert 0 < schedule.utilization <= 1.0

    @given(st.floats(min_value=0.6, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_ldo_quantization_idempotent(self, voltage):
        ldo = DigitalLDO()
        once = ldo.quantize(voltage)
        assert ldo.quantize(once) == once
        assert 0.6 - 1e-9 <= once <= 0.9 + 1e-9

    @given(st.dictionaries(st.sampled_from([0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9]),
                           st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_effective_voltage_within_schedule_range(self, macs_per_voltage):
        model = EnergyModel()
        effective = model.effective_voltage(macs_per_voltage)
        assert min(macs_per_voltage) - 1e-9 <= effective <= max(macs_per_voltage) + 1e-9


class TestAutogradProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(np.asarray(values), requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones(len(values)))

    @given(st.lists(finite_floats, min_size=1, max_size=20), st.floats(-10, 10))
    @settings(max_examples=40, deadline=None)
    def test_linear_combination_gradient(self, values, coefficient):
        tensor = Tensor(np.asarray(values), requires_grad=True)
        (tensor * coefficient).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full(len(values), coefficient))


class TestWorldProperties:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_inventory_only_grows_and_steps_monotone(self, seed):
        world = EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS,
                              WorldConfig(), np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        world.set_subtask("mine_logs")
        previous_inventory = set()
        previous_steps = 0
        for _ in range(40):
            world.step(int(rng.integers(0, NUM_ACTIONS)))
            assert previous_inventory <= world.inventory
            assert world.steps_taken == previous_steps + 1
            previous_inventory = set(world.inventory)
            previous_steps = world.steps_taken
