"""The documentation suite must stay consistent with the code.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``):
internal links in ``README.md`` and ``docs/*.md`` resolve, and the campaign
presets documented there match ``repro.cli.CAMPAIGN_PRESETS`` and the
``campaign --help`` output.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_suite_exists():
    for name in ("architecture.md", "campaigns.md", "runtable-schema.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} is missing"


def test_internal_links_resolve():
    checker = _load_checker()
    errors: list[str] = []
    checker.check_links(errors)
    assert errors == []


def test_campaign_presets_documented_and_listed_in_help():
    checker = _load_checker()
    errors: list[str] = []
    checker.check_presets(errors)
    assert errors == []


def test_runtable_schema_documents_every_column():
    """docs/runtable-schema.md must name every RunRecord column verbatim."""
    from repro.eval.runtable import COLUMNS

    schema = (REPO_ROOT / "docs" / "runtable-schema.md").read_text()
    missing = [column for column in COLUMNS if f"`{column}`" not in schema]
    assert missing == [], f"columns undocumented in runtable-schema.md: {missing}"


def test_report_columns_documented():
    """The campaigns.md report-column table matches SUMMARY_COLUMNS exactly."""
    checker = _load_checker()
    errors: list[str] = []
    checker.check_report_columns(errors)
    assert errors == []


def test_report_column_checker_catches_drift(tmp_path, monkeypatch):
    """Renaming a documented column (or a constant) must fail the check."""
    checker = _load_checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    original = (REPO_ROOT / "docs" / "campaigns.md").read_text()
    (docs / "campaigns.md").write_text(
        original.replace("`mean_energy_j`", "`mean_energy`", 1))
    (docs / "runtable-schema.md").write_text(
        (REPO_ROOT / "docs" / "runtable-schema.md").read_text()
        .replace("`flips_total`", "`flip_total`"))
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    errors: list[str] = []
    checker.check_report_columns(errors)
    assert any("mean_energy" in error for error in errors)
    assert any("mean_energy_j" in error for error in errors)
    assert any("flips_total" in error for error in errors)
