"""Tests for the CREATE core techniques: AD, WR, entropy, policies, VS, baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AbftModel,
    AnomalyDetector,
    BaselineEnergyModel,
    ConstantVoltagePolicy,
    CreateConfig,
    DmrModel,
    EntropyTrace,
    ProtectionConfig,
    REFERENCE_POLICIES,
    ThUnderVoltInjector,
    VoltagePolicy,
    VoltageScalingConfig,
    action_entropy,
    default_policy,
    generate_candidate_policies,
    hadamard_matrix,
    max_entropy,
    normalized_entropy,
    outlier_ratio,
    pareto_front,
    random_orthogonal_matrix,
    rotate_reader,
    rotate_writer,
    rotation_matrix_for_dim,
)
from repro.core.voltage_scaling import AdaptiveVoltageController
from repro.faults import UniformErrorModel, VoltageErrorModel
from repro.quant import INT8


class TestAnomalyDetector:
    def test_clamps_out_of_bound_values(self):
        detector = AnomalyDetector()
        acc = np.array([10, -2000, 50, 3000])
        out = detector(acc, bound=100, component="layer.o")
        np.testing.assert_array_equal(out, [10, 0, 50, 0])
        assert detector.stats.elements_clamped == 2
        assert detector.stats.clamps_per_component["layer.o"] == 2

    def test_in_bound_values_untouched(self):
        detector = AnomalyDetector()
        acc = np.array([1, -5, 99])
        out = detector(acc, bound=100)
        np.testing.assert_array_equal(out, acc)
        assert detector.stats.elements_clamped == 0

    def test_disabled_detector_is_noop(self):
        detector = AnomalyDetector(enabled=False)
        acc = np.array([10_000])
        np.testing.assert_array_equal(detector(acc, bound=1), acc)

    def test_margin_loosens_bound(self):
        strict = AnomalyDetector(bound_margin=1.0)
        loose = AnomalyDetector(bound_margin=3.0)
        acc = np.array([250])
        assert strict(acc, bound=100)[0] == 0
        assert loose(acc, bound=100)[0] == 250

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            AnomalyDetector(bound_margin=0.0)

    def test_clamp_rate(self):
        detector = AnomalyDetector()
        detector(np.array([1000, 1]), bound=10)
        assert detector.stats.clamp_rate == pytest.approx(0.5)
        detector.stats.reset()
        assert detector.stats.clamp_rate == 0.0

    def test_does_not_modify_input(self):
        detector = AnomalyDetector()
        acc = np.array([1000])
        detector(acc, bound=10)
        assert acc[0] == 1000


class TestRotation:
    @pytest.mark.parametrize("dim", [2, 4, 8, 16, 64])
    def test_hadamard_is_orthonormal(self, dim):
        h = hadamard_matrix(dim)
        np.testing.assert_allclose(h @ h.T, np.eye(dim), atol=1e-10)

    def test_hadamard_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            hadamard_matrix(6)

    def test_random_orthogonal_is_orthonormal(self, rng):
        q = random_orthogonal_matrix(10, rng)
        np.testing.assert_allclose(q @ q.T, np.eye(10), atol=1e-10)

    def test_rotation_matrix_for_dim_dispatch(self, rng):
        assert rotation_matrix_for_dim(8).shape == (8, 8)
        q = rotation_matrix_for_dim(12, rng)
        np.testing.assert_allclose(q @ q.T, np.eye(12), atol=1e-10)

    def test_writer_reader_consistency_preserves_function(self, rng):
        """x @ W_writer followed by reading must be unchanged by rotation."""
        dim = 16
        rotation = hadamard_matrix(dim)
        writer = rng.normal(size=(24, dim))
        reader = rng.normal(size=(dim, 10))
        x = rng.normal(size=(5, 24))
        original = (x @ writer) @ reader
        rotated = (x @ rotate_writer(writer, rotation)) @ rotate_reader(reader, rotation)
        np.testing.assert_allclose(rotated, original, atol=1e-9)

    def test_rotation_preserves_l2_norm(self, rng):
        rotation = hadamard_matrix(32)
        x = rng.normal(size=(7, 32))
        np.testing.assert_allclose(np.linalg.norm(x @ rotation, axis=-1),
                                   np.linalg.norm(x, axis=-1), atol=1e-9)

    def test_rotation_spreads_outliers(self, rng):
        x = rng.normal(size=(50, 64)) * 0.1
        x[:, 3] *= 40.0  # systematic outlier channel
        rotated = x @ hadamard_matrix(64)
        assert outlier_ratio(rotated) < outlier_ratio(x)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            rotate_writer(rng.normal(size=(4, 6)), hadamard_matrix(4))
        with pytest.raises(ValueError):
            rotate_reader(rng.normal(size=(6, 4)), hadamard_matrix(4))

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_hadamard_entries_have_equal_magnitude(self, power):
        dim = 2 ** power
        h = hadamard_matrix(dim)
        np.testing.assert_allclose(np.abs(h), 1.0 / np.sqrt(dim))

    def test_outlier_ratio_of_zeros(self):
        assert outlier_ratio(np.zeros(10)) == 1.0


class TestEntropy:
    def test_uniform_logits_have_max_entropy(self):
        logits = np.zeros(12)
        assert action_entropy(logits) == pytest.approx(max_entropy(12))

    def test_peaked_logits_have_low_entropy(self):
        logits = np.zeros(12)
        logits[3] = 20.0
        assert action_entropy(logits) < 0.01

    def test_temperature_flattens(self):
        logits = np.arange(6, dtype=float)
        assert action_entropy(logits, temperature=5.0) > action_entropy(logits, temperature=0.5)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            action_entropy(np.zeros(3), temperature=0.0)

    def test_normalized_entropy_in_unit_interval(self, rng):
        for _ in range(10):
            value = normalized_entropy(rng.normal(size=12))
            assert 0.0 <= value <= 1.0

    def test_entropy_trace_aggregation(self):
        trace = EntropyTrace()
        trace.record(0.2, True, 0.8)
        trace.record(1.8, False, 0.75)
        trace.record(0.4, True, 0.8)
        assert len(trace) == 3
        assert trace.mean_entropy(critical=True) == pytest.approx(0.3)
        assert trace.mean_entropy(critical=False) == pytest.approx(1.8)
        assert trace.mean_entropy() == pytest.approx((0.2 + 1.8 + 0.4) / 3)

    def test_empty_trace_is_nan(self):
        assert np.isnan(EntropyTrace().mean_entropy())


class TestPolicies:
    def test_reference_policies_are_valid(self):
        for name, policy in REFERENCE_POLICIES.items():
            assert policy.name == name
            assert policy.min_voltage() <= policy.max_voltage()

    def test_voltage_monotonically_non_increasing_in_entropy(self):
        policy = default_policy()
        voltages = [policy.voltage_for_entropy(e) for e in np.linspace(0, 3, 30)]
        assert all(a >= b for a, b in zip(voltages, voltages[1:]))

    def test_bin_edges(self):
        policy = VoltagePolicy("t", (1.0,), (0.8, 0.7))
        assert policy.voltage_for_entropy(0.5) == 0.8
        assert policy.voltage_for_entropy(1.0) == 0.8
        assert policy.voltage_for_entropy(1.01) == 0.7

    def test_invalid_policies(self):
        with pytest.raises(ValueError):
            VoltagePolicy("bad", (1.0,), (0.8,))
        with pytest.raises(ValueError):
            VoltagePolicy("bad", (1.0, 0.5), (0.8, 0.7, 0.6))
        with pytest.raises(ValueError):
            VoltagePolicy("bad", (1.0,), (0.7, 0.8))
        with pytest.raises(ValueError):
            VoltagePolicy("bad", (1.0,), (0.95, 0.9))

    def test_constant_policy(self):
        policy = ConstantVoltagePolicy(0.78)
        assert policy.voltage_for_entropy(0.0) == policy.voltage_for_entropy(5.0) == 0.78

    def test_candidate_generation(self, rng):
        candidates = generate_candidate_policies(20, rng)
        assert len(candidates) == 20
        for policy in candidates:
            assert len(policy.voltages) == len(policy.thresholds) + 1

    def test_candidate_generation_invalid(self):
        with pytest.raises(ValueError):
            generate_candidate_policies(0)

    def test_pareto_front(self):
        success = np.array([0.9, 0.9, 0.5, 0.95])
        voltage = np.array([0.80, 0.75, 0.74, 0.85])
        front = pareto_front(success, voltage)
        assert 1 in front and 3 in front
        assert 0 not in front  # dominated by index 1

    def test_pareto_front_shape_mismatch(self):
        with pytest.raises(ValueError):
            pareto_front(np.ones(3), np.ones(2))

    def test_describe_mentions_all_levels(self):
        text = default_policy().describe()
        assert text.count("->") == len(default_policy().voltages)


class TestVoltageScalingRuntime:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            VoltageScalingConfig(policy=default_policy(), update_interval=0)
        with pytest.raises(ValueError):
            VoltageScalingConfig(policy=default_policy(), entropy_source="magic")
        with pytest.raises(ValueError):
            AdaptiveVoltageController(
                config=VoltageScalingConfig(policy=default_policy(),
                                            entropy_source="predictor"))

    def test_oracle_controller_updates_on_interval(self, wooden_world):
        wooden_world.set_subtask("mine_logs")
        controller = AdaptiveVoltageController(
            config=VoltageScalingConfig(policy=default_policy(), update_interval=5,
                                        entropy_source="oracle"))
        controller.begin_trial()
        voltages, predicted_flags = [], []
        for step in range(12):
            voltage, predicted = controller.before_step(wooden_world, 0)
            voltages.append(voltage)
            predicted_flags.append(predicted)
        # Oracle source never charges the predictor.
        assert not any(predicted_flags)
        assert all(default_policy().min_voltage() <= v <= default_policy().max_voltage()
                   for v in voltages)
        summary = controller.schedule_summary()
        assert summary["min_voltage"] >= default_policy().min_voltage() - 1e-9

    def test_injector_model_tracks_voltage(self, wooden_world):
        from repro.faults import ErrorInjector

        wooden_world.set_subtask("mine_logs")
        injector = ErrorInjector(UniformErrorModel(0.0))
        controller = AdaptiveVoltageController(
            config=VoltageScalingConfig(policy=default_policy(), update_interval=1,
                                        entropy_source="oracle"),
            injector=injector)
        controller.begin_trial()
        controller.before_step(wooden_world, 0)
        assert isinstance(injector.model, VoltageErrorModel)
        assert injector.model.voltage == pytest.approx(controller.voltage)


class TestBaselines:
    def test_dmr_energy_at_least_redundancy(self):
        dmr = DmrModel()
        assert dmr.energy_multiplier(0.0) == pytest.approx(2.0)
        assert dmr.energy_multiplier(1e-3) > 2.0
        assert dmr.corrects_errors()

    def test_abft_recovery_grows_with_error_rate(self):
        abft = AbftModel()
        assert abft.energy_multiplier(1e-6) < abft.energy_multiplier(1e-3)
        assert abft.corrects_errors(1e-5)
        assert not abft.corrects_errors(1e-1)

    def test_invalid_error_rates(self):
        with pytest.raises(ValueError):
            DmrModel().energy_multiplier(2.0)
        with pytest.raises(ValueError):
            AbftModel().energy_multiplier(-0.1)

    def test_thundervolt_zeroes_instead_of_corrupting(self):
        injector = ThUnderVoltInjector(UniformErrorModel(5e-3),
                                       rng=np.random.default_rng(0))
        acc = np.full(5000, 1000, dtype=np.int64)
        out = injector.inject(acc, INT8)
        assert set(np.unique(out)) <= {0, 1000}
        assert injector.elements_zeroed > 0
        # Collateral pruning zeroes more elements than the raw error rate.
        element_rate = 1.0 - (1.0 - 5e-3) ** 24
        assert injector.elements_zeroed > element_rate * acc.size

    def test_thundervolt_invalid_collateral(self):
        with pytest.raises(ValueError):
            ThUnderVoltInjector(UniformErrorModel(1e-3), collateral_factor=-1.0)

    def test_baseline_energy_model_ordering(self):
        multipliers = BaselineEnergyModel().multipliers(1e-4)
        assert multipliers["dmr"] > multipliers["abft"] > multipliers["create"]
        assert multipliers["thundervolt"] > multipliers["create"]


class TestCreateConfig:
    def test_labels(self):
        assert CreateConfig(ad=True, wr=True, vs_policy=None).label() == "AD+WR+noVS"
        assert "VS(C)" in CreateConfig(vs_policy=default_policy()).label()

    def test_planner_protection_carries_ad(self):
        config = CreateConfig(ad=True, planner_voltage=0.78)
        protection = config.planner_protection()
        assert protection.anomaly_detection and protection.voltage == 0.78

    def test_controller_protection_builds_vs(self):
        config = CreateConfig(vs_policy=default_policy(), vs_update_interval=3)
        protection = config.controller_protection()
        assert protection.voltage_scaling is not None
        assert protection.voltage_scaling.update_interval == 3

    def test_protection_is_clean(self):
        assert ProtectionConfig().is_clean
        assert not ProtectionConfig(voltage=0.8).is_clean
        assert not ProtectionConfig(error_model=UniformErrorModel(1e-4)).is_clean

    def test_static_voltage_none_under_vs(self):
        protection = ProtectionConfig(
            voltage=0.8,
            voltage_scaling=VoltageScalingConfig(policy=default_policy(),
                                                 entropy_source="oracle"))
        assert protection.static_voltage() is None
