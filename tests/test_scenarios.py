"""Scenario catalog, vocabulary versioning, and scenario-system tests.

Covers the guarantees the versioned scenario subsystem makes:

* the default Table-10 vocabulary is **bit-identical** to the pre-catalog
  construction (golden fingerprint, sizes, token ids) — all shipped planner
  checkpoints and run tables depend on it;
* the procedural generators are deterministic across seeds and processes;
* planner checkpoints are rejected under mismatched vocabularies instead of
  silently corrupting token maps;
* ``encode_prompt`` raises on out-of-range progress instead of aliasing;
* the CLI surface (``suites``, the ``navigation``/``assembly`` presets,
  ``merge --watch``) works end to end.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.agents.vocabulary import (
    DEFAULT_MAX_PROGRESS,
    TABLE10_FINGERPRINT,
    build_vocabulary,
    scenario_vocabulary,
)
from repro.cli import CAMPAIGN_PRESETS, main
from repro.env import ALL_SUBTASKS, CATALOG, SUITES
from repro.env.scenarios import (
    ScenarioCatalog,
    ScenarioEntry,
    build_assembly_suite,
    build_navigation_suite,
    suite_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Golden Table-10 vocabulary (protects every shipped checkpoint)
# ----------------------------------------------------------------------
class TestTable10Golden:
    def test_fingerprint_pinned(self):
        assert build_vocabulary().fingerprint == TABLE10_FINGERPRINT

    def test_sizes_and_token_ids(self):
        vocab = build_vocabulary()
        assert (vocab.pad, vocab.bos, vocab.eos, vocab.sep) == (0, 1, 2, 3)
        assert len(vocab.task_tokens) == 21
        assert len(vocab.progress_tokens) == DEFAULT_MAX_PROGRESS
        assert len(vocab.subtask_tokens) == len(ALL_SUBTASKS)
        assert vocab.size == 63
        # Spot-pin the token layout: tasks from 4, progress after tasks,
        # subtasks last — sorted-name order throughout.
        assert vocab.task_tokens["alphabet"] == 4
        assert vocab.progress_tokens[0] == 4 + 21
        assert vocab.subtask_tokens["approach_target"] == 4 + 21 + 12
        assert vocab.subtask_tokens == {
            name: 37 + index for index, name in enumerate(ALL_SUBTASKS.names)}

    def test_explicit_suite_set_matches_default(self):
        explicit = build_vocabulary(
            suites=("minecraft", "libero", "calvin", "oxe", "manipulation"),
            registry=ALL_SUBTASKS, max_progress=DEFAULT_MAX_PROGRESS)
        assert explicit.fingerprint == TABLE10_FINGERPRINT

    def test_matches_shipped_checkpoint_shape(self):
        path = REPO_ROOT / ".model_cache"
        shipped = sorted(path.glob("planner-jarvis-*.npz"))
        assert shipped, "the jarvis planner checkpoint must be shipped"
        with np.load(shipped[0]) as data:
            assert data["embed__weight"].shape[0] == build_vocabulary().size


# ----------------------------------------------------------------------
# encode_prompt range (regression: silent clamp corrupted long prompts)
# ----------------------------------------------------------------------
class TestProgressRange:
    def test_out_of_range_progress_raises(self):
        vocab = build_vocabulary()
        with pytest.raises(ValueError, match="outside this vocabulary's range"):
            vocab.encode_prompt("wooden", vocab.max_progress)
        with pytest.raises(ValueError, match="outside this vocabulary's range"):
            vocab.encode_prompt("wooden", -1)

    def test_full_valid_range_encodes_distinct_prompts(self):
        vocab = build_vocabulary()
        prompts = {tuple(vocab.encode_prompt("wooden", p))
                   for p in range(vocab.max_progress)}
        assert len(prompts) == vocab.max_progress  # no aliasing

    def test_scenario_vocabulary_extends_progress(self):
        suite = CATALOG.build("assembly")
        vocab = scenario_vocabulary(suite)
        longest = max(len(task.plan) for task in suite.tasks())
        assert longest > DEFAULT_MAX_PROGRESS  # the scenario needs the range
        assert vocab.max_progress == longest
        task = suite.task_names[0]
        assert vocab.encode_prompt(task, longest - 1)[2] == \
            vocab.progress_tokens[longest - 1]

    def test_insufficient_max_progress_rejected(self):
        with pytest.raises(ValueError, match="cannot express the longest plan"):
            build_vocabulary(suites=(CATALOG.build("assembly"),), max_progress=12)

    def test_registry_missing_subtasks_rejected(self):
        with pytest.raises(ValueError, match="registry lacks subtasks"):
            build_vocabulary(suites=(CATALOG.build("navigation"),),
                             registry=ALL_SUBTASKS)

    def test_registry_union_deduplicates_shared_registries(self):
        # libero and calvin share one registry object, and minecraft's is
        # disjoint: the default union must not trip over either case.
        vocab = build_vocabulary(suites=("minecraft", "libero", "calvin"))
        assert set(vocab.subtask_tokens) == \
            set(SUITES["minecraft"].registry.names) | \
            set(SUITES["libero"].registry.names)


# ----------------------------------------------------------------------
# Hot-path caches (decode_plan / is_subtask_token)
# ----------------------------------------------------------------------
class TestDecodeCaches:
    def test_decode_plan_roundtrip_and_invalid_tokens(self):
        vocab = build_vocabulary()
        plan = ["mine_logs", "craft_planks"]
        tokens = vocab.encode_plan(plan)
        assert vocab.decode_plan(tokens) == plan
        assert vocab.decode_plan([999, vocab.eos]) == ["<invalid:999>"]

    def test_inverse_map_is_cached(self):
        vocab = build_vocabulary()
        assert vocab._subtask_names_by_token is vocab._subtask_names_by_token
        assert vocab._subtask_token_set is vocab._subtask_token_set

    def test_is_subtask_token(self):
        vocab = build_vocabulary()
        for name, token in vocab.subtask_tokens.items():
            assert vocab.is_subtask_token(token)
        assert not vocab.is_subtask_token(vocab.eos)
        assert not vocab.is_subtask_token(vocab.task_tokens["wooden"])


# ----------------------------------------------------------------------
# Procedural generators
# ----------------------------------------------------------------------
class TestGenerators:
    def test_navigation_plan_bounds_and_registry(self):
        suite = build_navigation_suite()
        assert len(suite) == 6
        for task in suite.tasks():
            assert 6 <= len(task.plan) <= 14
            assert len(set(task.plan)) == len(task.plan)  # duplicate-free
            for subtask in task.plan:
                assert subtask in suite.registry
            assert task.plan[-1] == "activate_beacon"

    def test_assembly_plan_bounds_and_shared_subrecipes(self):
        suite = build_assembly_suite()
        assert len(suite) == 5
        longest = 0
        for task in suite.tasks():
            assert 10 <= len(task.plan) <= 20
            assert len(set(task.plan)) == len(task.plan)
            longest = max(longest, len(task.plan))
            # Shared mount sub-recipe: every fetch is followed by its align
            # and fasten steps.
            for index, subtask in enumerate(task.plan):
                if subtask.startswith("fetch_"):
                    part = subtask.removeprefix("fetch_")
                    assert task.plan[index + 1] == f"align_{part}"
                    assert task.plan[index + 2] == f"fasten_{part}"
        assert longest > DEFAULT_MAX_PROGRESS  # stresses the progress range

    def test_same_seed_is_deterministic(self):
        assert suite_fingerprint(build_navigation_suite()) == \
            suite_fingerprint(build_navigation_suite())
        assert suite_fingerprint(build_assembly_suite(seed=5)) == \
            suite_fingerprint(build_assembly_suite(seed=5))

    def test_different_seed_changes_suite(self):
        assert suite_fingerprint(build_navigation_suite(seed=1)) != \
            suite_fingerprint(build_navigation_suite(seed=2))
        assert suite_fingerprint(build_assembly_suite(seed=1)) != \
            suite_fingerprint(build_assembly_suite(seed=2))

    def test_deterministic_across_processes(self):
        """A fresh interpreter rebuilds the identical suites and vocabularies."""
        script = (
            "from repro.env.scenarios import CATALOG, suite_fingerprint\n"
            "from repro.agents.vocabulary import scenario_vocabulary\n"
            "for name in ('navigation', 'assembly'):\n"
            "    suite = CATALOG.build(name)\n"
            "    print(name, suite_fingerprint(suite),"
            " scenario_vocabulary(suite).fingerprint)\n")
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})
        lines = dict()
        for line in result.stdout.splitlines():
            name, suite_fp, vocab_fp = line.split()
            lines[name] = (suite_fp, vocab_fp)
        for name in ("navigation", "assembly"):
            suite = CATALOG.build(name)
            assert lines[name] == (suite_fingerprint(suite),
                                   scenario_vocabulary(suite).fingerprint)

    def test_invalid_num_tasks_rejected(self):
        with pytest.raises(ValueError):
            build_navigation_suite(num_tasks=0)
        with pytest.raises(ValueError):
            build_assembly_suite(num_tasks=0)
        with pytest.raises(ValueError):
            build_navigation_suite(num_tasks=1000)


# ----------------------------------------------------------------------
# The catalog registry
# ----------------------------------------------------------------------
class TestCatalog:
    def test_registered_names(self):
        assert CATALOG.names() == ["assembly", "calvin", "kitchen", "libero",
                                   "manipulation", "minecraft", "navigation",
                                   "oxe"]

    def test_static_entries_alias_module_suites(self):
        for name in ("minecraft", "libero", "calvin", "oxe", "manipulation"):
            assert CATALOG.build(name) is SUITES[name]

    def test_default_build_is_memoized(self):
        assert CATALOG.build("navigation") is CATALOG.build("navigation")

    def test_parameterized_build_is_fresh(self):
        small = CATALOG.build("navigation", num_tasks=3)
        assert len(small) == 3
        assert small is not CATALOG.build("navigation")

    def test_duplicate_registration_rejected(self):
        catalog = ScenarioCatalog()
        entry = ScenarioEntry(name="x", kind="generated", vocabulary="none",
                              description="", factory=build_navigation_suite,
                              registry=CATALOG.get("navigation").registry)
        catalog.register(entry)
        with pytest.raises(KeyError):
            catalog.register(entry)
        catalog.register(entry, overwrite=True)

    def test_invalid_entry_modes_rejected(self):
        with pytest.raises(ValueError):
            ScenarioEntry(name="x", kind="nope", vocabulary="none",
                          description="", factory=build_navigation_suite,
                          registry=CATALOG.get("navigation").registry)
        with pytest.raises(ValueError):
            ScenarioEntry(name="x", kind="generated", vocabulary="nope",
                          description="", factory=build_navigation_suite,
                          registry=CATALOG.get("navigation").registry)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            CATALOG.get("warehouse")

    def test_private_catalog_does_not_poison_global_builds(self):
        # The default-build memo is per entry, so a same-named entry in a
        # different catalog never redirects the global CATALOG's builds.
        private = ScenarioCatalog()
        private.register(ScenarioEntry(
            name="navigation", kind="generated", vocabulary="none",
            description="", factory=build_assembly_suite,
            registry=CATALOG.get("assembly").registry))
        assert private.build("navigation").name == "assembly"
        assert CATALOG.build("navigation").name == "navigation"


# ----------------------------------------------------------------------
# Checkpoint-vocabulary mismatch rejection
# ----------------------------------------------------------------------
class TestVocabularyMismatch:
    def test_wrong_fingerprint_rejected(self, tmp_path):
        from repro.agents.zoo import (VocabularyMismatchError, _save_state,
                                      _verify_planner_checkpoint)

        vocab = build_vocabulary()
        path = tmp_path / "planner.npz"
        _save_state(path, {"embed.weight": np.zeros((vocab.size, 8))},
                    meta={"vocab_fingerprint": "deadbeef0000",
                          "vocab_size": vocab.size})
        with pytest.raises(VocabularyMismatchError, match="deadbeef0000"):
            _verify_planner_checkpoint(path, vocab)

    def test_wrong_size_rejected(self, tmp_path):
        from repro.agents.zoo import (VocabularyMismatchError, _save_state,
                                      _verify_planner_checkpoint)

        vocab = build_vocabulary()
        path = tmp_path / "planner.npz"
        _save_state(path, {"embed.weight": np.zeros((10, 8))},
                    meta={"vocab_fingerprint": vocab.fingerprint,
                          "vocab_size": 10})
        with pytest.raises(VocabularyMismatchError, match="vocab size"):
            _verify_planner_checkpoint(path, vocab)

    def test_legacy_checkpoint_shape_mismatch_rejected(self, tmp_path):
        """Pre-versioning checkpoints (no metadata) fall back to shape checks."""
        from repro.agents.zoo import (VocabularyMismatchError, _save_state,
                                      _verify_planner_checkpoint)

        path = tmp_path / "planner.npz"
        _save_state(path, {"embed.weight": np.zeros((63, 8))})
        scenario = scenario_vocabulary(CATALOG.build("navigation"))
        assert scenario.size != 63
        with pytest.raises(VocabularyMismatchError, match="embeds"):
            _verify_planner_checkpoint(path, scenario)

    def test_shipped_jarvis_checkpoint_rejected_under_scenario_vocab(self):
        from repro.agents.configs import PLANNER_CONFIGS
        from repro.agents.zoo import (VocabularyMismatchError,
                                      _planner_cache_path,
                                      _verify_planner_checkpoint)

        path = _planner_cache_path(PLANNER_CONFIGS["jarvis"], build_vocabulary())
        if not path.exists():
            pytest.skip("jarvis checkpoint not cached")
        with pytest.raises(VocabularyMismatchError):
            _verify_planner_checkpoint(
                path, scenario_vocabulary(CATALOG.build("navigation")))

    def test_matching_checkpoint_accepted(self, tmp_path):
        from repro.agents.zoo import _save_state, _verify_planner_checkpoint

        vocab = build_vocabulary()
        path = tmp_path / "planner.npz"
        _save_state(path, {"embed.weight": np.zeros((vocab.size, 8))},
                    meta={"vocab_fingerprint": vocab.fingerprint,
                          "vocab_size": vocab.size})
        _verify_planner_checkpoint(path, vocab)  # must not raise

    def test_controller_checkpoint_wrong_registry_rejected(self, tmp_path):
        from repro.agents.zoo import (VocabularyMismatchError,
                                      _registry_fingerprint, _save_state,
                                      _verify_controller_checkpoint)

        nav = CATALOG.get("navigation").registry
        path = tmp_path / "controller.npz"
        _save_state(path, {"subtask_embed.weight": np.zeros((len(nav), 8))},
                    meta={"id_registry_fingerprint": "deadbeef0000"})
        with pytest.raises(VocabularyMismatchError, match="deadbeef0000"):
            _verify_controller_checkpoint(path, nav)
        # Matching fingerprint is accepted.
        _save_state(path, {"subtask_embed.weight": np.zeros((len(nav), 8))},
                    meta={"id_registry_fingerprint": _registry_fingerprint(nav)})
        _verify_controller_checkpoint(path, nav)

    def test_legacy_controller_checkpoint_shape_mismatch_rejected(self, tmp_path):
        from repro.agents.zoo import (VocabularyMismatchError, _save_state,
                                      _verify_controller_checkpoint)

        path = tmp_path / "controller.npz"
        _save_state(path, {"subtask_embed.weight": np.zeros((26, 8))})
        nav = CATALOG.get("navigation").registry
        assert len(nav) != 26
        with pytest.raises(VocabularyMismatchError, match="embeds"):
            _verify_controller_checkpoint(path, nav)
        _verify_controller_checkpoint(path, None)  # ALL_SUBTASKS: accepted

    def test_metadata_roundtrip_excluded_from_state(self, tmp_path):
        from repro.agents.zoo import _load_meta, _load_state, _save_state

        path = tmp_path / "model.npz"
        _save_state(path, {"layer.weight": np.ones((2, 2))},
                    meta={"vocab_fingerprint": "abc"})
        assert set(_load_state(path)) == {"layer.weight"}
        assert _load_meta(path) == {"vocab_fingerprint": "abc"}


# ----------------------------------------------------------------------
# Scenario systems (cached surrogates; trains on first-ever run)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def navigation_system():
    from repro.agents import get_system

    return get_system("jarvis-navigation")


class TestScenarioSystems:
    def test_planner_reproduces_generated_plans(self, navigation_system):
        suite = navigation_system.suite
        planner = navigation_system.planner
        assert planner.vocab.fingerprint == \
            scenario_vocabulary(suite).fingerprint
        for task in suite.tasks()[:3]:
            assert planner.plan(task.name, 0) == list(task.plan)

    def test_clean_trial_succeeds(self, navigation_system):
        executor = navigation_system.executor()
        result = executor.run_trial(navigation_system.task_names[0], seed=0)
        assert result.success
        assert result.planner_invocations >= 1

    def test_id_registry_threaded_through_executor(self, navigation_system):
        executor = navigation_system.executor()
        assert executor.id_registry is navigation_system.registry
        assert executor.id_registry is not ALL_SUBTASKS

    def test_no_predictor_and_trait_declared(self, navigation_system):
        from repro.agents.registry import system_has_predictor

        assert navigation_system.predictor is None
        assert not system_has_predictor("jarvis-navigation")
        assert not system_has_predictor("jarvis-assembly-rotated")

    def test_scenario_resilience_structure(self, navigation_system):
        from repro.eval.experiments import scenario_resilience

        task = navigation_system.task_names[0]
        results = scenario_resilience("navigation", bers=[1e-3],
                                      tasks=[task], num_trials=2, seed=0)
        assert set(results) == {"unprotected", "AD", "WR", "AD+WR"}
        for arm in results.values():
            assert list(arm) == [task]
            assert len(arm[task].points) == 1

    def test_scenario_resilience_unknown_task_rejected(self):
        from repro.eval.experiments import scenario_resilience

        with pytest.raises(KeyError, match="unknown task"):
            scenario_resilience("navigation", bers=[1e-3], tasks=["wooden"])


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestScenarioCli:
    def test_presets_registered(self):
        assert "navigation" in CAMPAIGN_PRESETS
        assert "assembly" in CAMPAIGN_PRESETS

    def test_suites_lists_catalog_with_fingerprints(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        for entry in CATALOG.entries():
            assert entry.name in out
            assert entry.fingerprint in out
        assert TABLE10_FINGERPRINT in out

    def test_navigation_dry_run_enumerates_battery(self, capsys, tmp_path):
        code = main(["campaign", "navigation", "--trials", "2", "--dry-run",
                     "--bers", "1e-3", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        for arm in ("unprotected", "AD/", "WR/", "AD+WR/"):
            assert arm in out
        assert "nothing was trained or executed" in out
        assert not list(tmp_path.glob("*.csv"))

    def test_assembly_dry_run_enumerates_battery(self, capsys):
        code = main(["campaign", "assembly", "--trials", "2", "--dry-run",
                     "--bers", "1e-3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario-assembly" in out and "AD+WR/" in out

    def test_merge_watch_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["merge", "out", "q", "--watch", "--interval", "0.5",
             "--max-polls", "3"])
        assert args.watch and args.interval == 0.5 and args.max_polls == 3


class TestMergeWatch:
    def test_shard_out_dirs_are_not_treated_as_queues(self, tmp_path):
        """Shard --out dirs carry plans/ too; --watch must not mutate them."""
        from repro.cli import _queue_roots

        shard = tmp_path / "shard1"
        (shard / "plans").mkdir(parents=True)
        queue = tmp_path / "q"
        (queue / "plans").mkdir(parents=True)
        (queue / "tasks").mkdir()
        assert _queue_roots([str(shard), str(queue)]) == [queue]
        assert not (shard / "tasks").exists()  # untouched
    def test_watch_reports_pending_queue(self, capsys, tmp_path, jarvis_system):
        queue = tmp_path / "q"
        assert main(["campaign", "repetitions", "--trials", "2",
                     "--queue", str(queue)]) == 0
        capsys.readouterr()
        code = main(["merge", str(tmp_path / "merged"), str(queue),
                     "--watch", "--interval", "0.01", "--max-polls", "2"])
        out = capsys.readouterr().out
        assert code == 1  # still pending, gave up after max polls
        assert "[watch 1]" in out and "[watch 2]" in out
        assert "pending" in out and "stopped after 2 poll(s)" in out

    def test_watch_completes_on_drained_queue(self, capsys, tmp_path,
                                              jarvis_system):
        queue = tmp_path / "q"
        assert main(["campaign", "repetitions", "--trials", "2",
                     "--queue", str(queue)]) == 0
        assert main(["worker", "--queue", str(queue), "--wait"]) == 0
        capsys.readouterr()
        code = main(["merge", str(tmp_path / "merged"), str(queue),
                     "--watch", "--interval", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete: all cells merged" in out
        assert list((tmp_path / "merged").glob("*.csv"))


# ----------------------------------------------------------------------
# Catalog/docs consistency (same checks as the CI docs job)
# ----------------------------------------------------------------------
def test_catalog_consistency_checks_pass():
    spec = importlib.util.spec_from_file_location(
        "check_catalog", REPO_ROOT / "tools" / "check_catalog.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.collect_errors() == []
