"""Tests for the fused kernel runtime and KV-cached incremental decoding.

Three equivalence contracts are asserted here:

1. ``KernelContext.qgemm`` is bit-identical to the reference
   :func:`repro.quant.quantized_matmul` pipeline — outputs and every stats
   object (``GemmStats``, ``InjectionStats``, ``AnomalyStats``);
2. fault-free KV-cached decode is byte-identical to uncached decode
   (tokens, logits, and logical MAC counts);
3. under injection, caching preserves the expected number of corrupted
   elements *per produced accumulator element*.
"""

import numpy as np
import pytest

from repro.core import AnomalyDetector
from repro.faults import ErrorInjector, SingleBitErrorModel, UniformErrorModel
from repro.hardware import EnergyModel, TimingErrorModel
from repro.nn.functional import rms_norm, silu
from repro.quant import (
    GemmHooks,
    GemmStats,
    INT4,
    INT8,
    KernelContext,
    KernelCounters,
    KVCache,
    QuantSpec,
    QuantizedLinear,
    compute_scale,
)

SPECS = [INT8, INT4, QuantSpec(bits=8, accumulator_bits=16)]


def _layer(rng, spec=INT8, bound_factor=1.2, name="l"):
    w = rng.normal(size=(12, 6)) * 0.3
    x = rng.normal(size=(5, 12))
    bound = float(np.abs(x @ w).max()) * bound_factor
    layer = QuantizedLinear(name, w, None, compute_scale(x, spec), spec=spec,
                            output_bound=bound)
    return layer, x


class TestKernelContextEquivalence:
    @pytest.mark.parametrize("spec", SPECS, ids=str)
    def test_fault_free_bit_identical(self, rng, spec):
        layer, x = _layer(rng, spec)
        ref_stats, ctx_stats = GemmStats(), GemmStats()
        ref = layer(x, hooks=GemmHooks(stats=ref_stats))
        ctx = KernelContext({"l": layer}, hooks=GemmHooks(stats=ctx_stats), spec=spec)
        out = ctx.qgemm("l", x)
        np.testing.assert_array_equal(ref, out)
        assert ref_stats.macs == ctx_stats.macs == ctx.counters.macs
        assert ref_stats.macs_per_component == ctx_stats.macs_per_component
        assert ref_stats.output_elements == ctx.counters.output_elements

    @pytest.mark.parametrize("spec", SPECS, ids=str)
    def test_injection_and_clamp_bit_identical(self, rng, spec):
        layer, x = _layer(rng, spec)
        model = UniformErrorModel(0.02)
        ref_inj = ErrorInjector(model, rng=np.random.default_rng(7))
        ctx_inj = ErrorInjector(model, rng=np.random.default_rng(7))
        ref_det, ctx_det = AnomalyDetector(), AnomalyDetector()
        ref = layer(x, hooks=GemmHooks(injector=ref_inj, anomaly_clamp=ref_det))
        ctx = KernelContext({"l": layer}, spec=spec,
                            hooks=GemmHooks(injector=ctx_inj, anomaly_clamp=ctx_det))
        out = ctx.qgemm("l", x)
        np.testing.assert_array_equal(ref, out)
        assert ref_inj.stats.bits_flipped == ctx_inj.stats.bits_flipped
        assert ref_inj.stats.elements_corrupted == ctx.counters.elements_corrupted
        assert ref_det.stats.elements_clamped == ctx.counters.elements_clamped

    def test_bias_applied(self, rng):
        w = rng.normal(size=(4, 3)) * 0.1
        bias = np.array([1.0, -2.0, 3.0])
        x = rng.normal(size=(2, 4))
        layer = QuantizedLinear("l", w, bias, compute_scale(x))
        ctx = KernelContext({"l": layer})
        np.testing.assert_array_equal(layer(x), ctx.qgemm("l", x))

    def test_quantized_input_shared_across_equal_scales(self, rng):
        """Q/K/V-style components with one input scale reuse the quantization."""
        x = rng.normal(size=(5, 12))
        params = compute_scale(x)
        layers = {
            "a": QuantizedLinear("a", rng.normal(size=(12, 6)) * 0.3, None, params),
            "b": QuantizedLinear("b", rng.normal(size=(12, 6)) * 0.3, None, params),
        }
        ctx = KernelContext(layers)
        ref_a = layers["a"](x)
        ref_b = layers["b"](x)
        np.testing.assert_array_equal(ctx.qgemm("a", x), ref_a)
        np.testing.assert_array_equal(ctx.qgemm("b", x), ref_b)

    def test_logical_rows_override_macs_only(self, rng):
        layer, x = _layer(rng)
        ctx = KernelContext({"l": layer})
        ctx.qgemm("l", x, logical_rows=40)
        assert ctx.counters.macs == 40 * 12 * 6
        assert ctx.counters.output_elements == x.shape[0] * 6

    def test_spec_mismatch_rejected(self, rng):
        layer, _ = _layer(rng, INT4)
        with pytest.raises(ValueError):
            KernelContext({"l": layer}, spec=INT8)

    def test_per_context_rng_stream(self, rng):
        layer, x = _layer(rng)
        injector = ErrorInjector(SingleBitErrorModel(bit=20, rate=0.05),
                                 rng=np.random.default_rng(1))
        first = KernelContext({"l": layer}, hooks=GemmHooks(injector=injector),
                              rng=np.random.default_rng(42)).qgemm("l", x)
        second = KernelContext({"l": layer}, hooks=GemmHooks(injector=injector),
                               rng=np.random.default_rng(42)).qgemm("l", x)
        np.testing.assert_array_equal(first, second)


class TestKernelCounters:
    def test_unified_interface_feeds_energy_and_timing(self, rng):
        layer, x = _layer(rng)
        ctx = KernelContext({"l": layer})
        ctx.qgemm("l", x)
        energy_model = EnergyModel()
        energy = energy_model.kernel_energy_j(ctx.counters, voltage=0.8)
        assert energy == pytest.approx(
            energy_model.compute_energy_j({0.8: ctx.counters.macs}))
        timing = TimingErrorModel()
        expected = timing.expected_corrupted_elements(ctx.counters, voltage=0.7)
        assert expected == pytest.approx(
            ctx.counters.output_elements * timing.element_error_rate(0.7))

    def test_reset(self):
        counters = KernelCounters()
        counters.record_gemm("c", 10, 5)
        counters.bits_flipped = 3
        counters.reset()
        assert counters.macs == 0 and counters.bits_flipped == 0
        assert counters.macs_per_component == {}

    def test_observed_element_error_rate(self):
        counters = KernelCounters()
        assert counters.observed_element_error_rate == 0.0
        counters.record_gemm(None, 10, 100)
        counters.elements_corrupted = 5
        assert counters.observed_element_error_rate == pytest.approx(0.05)


class TestKVCache:
    def test_append_advance_views(self):
        cache = KVCache(num_layers=2, capacity=4, dim=3)
        k = np.arange(6.0).reshape(2, 3)
        cache.append(0, k, k + 10)
        cache.append(1, k + 1, k + 11)
        cache.advance(2)
        assert cache.length == 2
        np.testing.assert_array_equal(cache.keys(0, 2), k)
        np.testing.assert_array_equal(cache.values(1, 2), k + 11)

    def test_overflow_rejected(self):
        cache = KVCache(num_layers=1, capacity=2, dim=3)
        with pytest.raises(ValueError):
            cache.append(0, np.zeros((3, 3)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            cache.advance(3)

    def test_reset_reuses_buffers(self):
        cache = KVCache(num_layers=1, capacity=2, dim=3)
        cache.append(0, np.ones((2, 3)), np.ones((2, 3)))
        cache.advance(2)
        cache.reset()
        assert cache.length == 0
        cache.append(0, np.zeros((1, 3)), np.zeros((1, 3)))
        cache.advance(1)
        assert cache.length == 1


# ----------------------------------------------------------------------
# Planner decode equivalence (the tentpole contracts)
# ----------------------------------------------------------------------
TASKS = ["wooden", "stone", "iron", "seed"]


class TestCachedDecodeEquivalence:
    def test_cached_equals_uncached_tokens_logits_macs(self, deployed_planner):
        for task in TASKS:
            cached_stats, uncached_stats = GemmStats(), GemmStats()
            cached_tokens, cached_logits = deployed_planner.decode_tokens(
                task, 0, hooks=GemmHooks(stats=cached_stats),
                use_cache=True, collect_logits=True)
            uncached_tokens, uncached_logits = deployed_planner.decode_tokens(
                task, 0, hooks=GemmHooks(stats=uncached_stats),
                use_cache=False, collect_logits=True)
            assert cached_tokens == uncached_tokens
            assert len(cached_logits) == len(uncached_logits)
            for cached, uncached in zip(cached_logits, uncached_logits):
                np.testing.assert_array_equal(cached, uncached)
            assert cached_stats.macs == uncached_stats.macs
            assert cached_stats.gemm_calls == uncached_stats.gemm_calls
            assert cached_stats.macs_per_component == uncached_stats.macs_per_component

    def test_kernel_matches_legacy_reference_path(self, deployed_planner):
        """The fused runtime reproduces the closure-over-QuantizedLinear path."""
        planner = deployed_planner

        def legacy_decode(task, stats):
            hooks = GemmHooks(stats=stats)
            ones = np.ones(planner.config.dim)

            def forward(tokens):
                x = planner.weights.embed[np.asarray(tokens, dtype=np.int64)]
                for index in range(len(planner.weights.layers)):
                    prefix = f"layer{index}"
                    h = rms_norm(x, ones, eps=1e-6)
                    q = planner._quantized[f"{prefix}.q"](h, hooks=hooks)
                    k = planner._quantized[f"{prefix}.k"](h, hooks=hooks)
                    v = planner._quantized[f"{prefix}.v"](h, hooks=hooks)
                    attn = planner._attention(q, k, v)
                    x2 = x + planner._quantized[f"{prefix}.o"](attn, hooks=hooks)
                    h2 = rms_norm(x2, ones, eps=1e-6)
                    gate = silu(planner._quantized[f"{prefix}.gate"](h2, hooks=hooks))
                    up = planner._quantized[f"{prefix}.up"](h2, hooks=hooks)
                    x = x2 + planner._quantized[f"{prefix}.down"](gate * up, hooks=hooks)
                x = rms_norm(x, ones, eps=1e-6)
                return planner._quantized["head"](x[-1:], hooks=hooks)[0]

            tokens = list(planner.vocab.encode_prompt(task, 0))
            generated = []
            for _ in range(planner.config.max_plan_length + 1):
                next_token = int(np.argmax(forward(tokens)))
                generated.append(next_token)
                tokens.append(next_token)
                if next_token == planner.vocab.eos:
                    break
            return generated

        for task in ("wooden", "iron"):
            legacy_stats, kernel_stats = GemmStats(), GemmStats()
            legacy_tokens = legacy_decode(task, legacy_stats)
            kernel_tokens, _ = deployed_planner.decode_tokens(
                task, 0, hooks=GemmHooks(stats=kernel_stats), use_cache=False)
            assert legacy_tokens == kernel_tokens
            assert legacy_stats.macs == kernel_stats.macs
            assert legacy_stats.gemm_calls == kernel_stats.gemm_calls
            assert legacy_stats.macs_per_component == kernel_stats.macs_per_component
            assert legacy_stats.output_elements == kernel_stats.output_elements

    def test_exposure_rate_preserved_under_injection(self, deployed_planner):
        """Caching changes produced elements, not per-element corruption."""
        ber = 2e-3
        rates = {}
        for use_cache in (True, False):
            injector = ErrorInjector(UniformErrorModel(ber),
                                     rng=np.random.default_rng(123))
            hooks = GemmHooks(injector=injector)
            for seed, task in enumerate(TASKS * 4):
                deployed_planner.decode_tokens(task, seed % 2, hooks=hooks,
                                               use_cache=use_cache)
            rates[use_cache] = injector.stats.observed_element_error_rate
        expected = ErrorInjector(UniformErrorModel(ber)) \
            .expected_element_error_rate(deployed_planner.spec)
        assert rates[True] == pytest.approx(expected, rel=0.25)
        assert rates[False] == pytest.approx(expected, rel=0.25)
        assert rates[True] == pytest.approx(rates[False], rel=0.25)

    def test_executor_escape_hatch(self, jarvis_system):
        executor = jarvis_system.executor(planner_use_cache=False)
        result = executor.run_trial("wooden", seed=0)
        assert result.success
        assert result.planner_invocations >= 1

    def test_plan_api_escape_hatch(self, deployed_planner):
        cached = deployed_planner.plan("wooden", 0, use_cache=True)
        uncached = deployed_planner.plan("wooden", 0, use_cache=False)
        assert cached == uncached


class TestKernelContextOnAgents:
    def test_planner_context_reuse_across_invocations(self, deployed_planner):
        stats = GemmStats()
        context = deployed_planner.kernel_context(GemmHooks(stats=stats))
        first = deployed_planner.plan("wooden", 0, context=context)
        macs_after_first = context.counters.macs
        second = deployed_planner.plan("wooden", 1, context=context)
        assert first and second
        assert context.counters.macs > macs_after_first
        assert stats.macs == context.counters.macs

    def test_controller_context_matches_hooks_path(self, deployed_controller, rng):
        from repro.env.observations import OBSERVATION_DIM

        observation = rng.normal(size=(OBSERVATION_DIM,))
        context = deployed_controller.kernel_context()
        via_context = deployed_controller.act_logits(1, observation, context=context)
        via_hooks = deployed_controller.act_logits(1, observation)
        np.testing.assert_array_equal(via_context, via_hooks)
        assert context.counters.macs > 0
