"""Tests for the circuit/chip substrate: timing, systolic array, energy, LDO, accelerator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    Accelerator,
    AcceleratorConfig,
    AnomalyDetectionRow,
    BatteryModel,
    DigitalLDO,
    EnergyModel,
    GemmWorkload,
    LdoSpec,
    MemoryConfig,
    MIN_VOLTAGE,
    NOMINAL_VOLTAGE,
    ScaleSimModel,
    SystolicArray,
    SystolicArrayConfig,
    TimingErrorModel,
    TimingModelConfig,
)


class TestTimingModel:
    def test_nominal_voltage_nearly_error_free(self):
        model = TimingErrorModel()
        assert model.mean_bit_error_rate(NOMINAL_VOLTAGE) < 1e-8

    def test_ber_monotone_in_voltage(self):
        model = TimingErrorModel()
        voltages = [0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9]
        rates = [model.mean_bit_error_rate(v) for v in voltages]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_higher_bits_fail_first(self):
        rates = TimingErrorModel().bit_error_rates(0.78)
        assert rates[23] > rates[16] > rates[8]

    @given(st.floats(min_value=0.6, max_value=0.9),
           st.integers(min_value=0, max_value=22))
    @settings(max_examples=60, deadline=None)
    def test_per_bit_monotone_in_bit_position(self, voltage, bit):
        model = TimingErrorModel()
        assert model.bit_error_rate(bit + 1, voltage) >= model.bit_error_rate(bit, voltage)

    def test_voltage_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            TimingErrorModel().bit_error_rate(0, 0.2)

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            TimingErrorModel().path_delay_ns(30, 0.8)

    def test_voltage_for_ber_inverse(self):
        model = TimingErrorModel()
        target = 1e-5
        voltage = model.voltage_for_ber(target)
        assert model.mean_bit_error_rate(voltage) <= target
        assert model.mean_bit_error_rate(voltage - 0.02) > target

    def test_voltage_for_ber_bounds(self):
        model = TimingErrorModel()
        assert model.voltage_for_ber(0.999) == MIN_VOLTAGE
        with pytest.raises(ValueError):
            model.voltage_for_ber(0.0)

    def test_table_contains_requested_voltages(self):
        table = TimingErrorModel().table(np.array([0.7, 0.8]))
        assert set(table) == {0.7, 0.8}
        assert table[0.7].shape == (24,)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TimingModelConfig(threshold_voltage=1.0)


class TestSystolicArray:
    def test_peak_throughput(self):
        config = SystolicArrayConfig()
        assert config.num_pes == 128 * 128
        assert config.peak_ops_per_second == pytest.approx(128 * 128 * 2 * 500e6)

    def test_schedule_tiles(self):
        array = SystolicArray()
        schedule = array.schedule(GemmWorkload(64, 300, 200))
        assert schedule.row_tiles == 3 and schedule.col_tiles == 2
        assert schedule.total_tiles == 6
        assert 0 < schedule.utilization <= 1.0

    def test_cycles_scale_with_m(self):
        array = SystolicArray()
        small = array.schedule(GemmWorkload(16, 128, 128)).cycles
        large = array.schedule(GemmWorkload(256, 128, 128)).cycles
        assert large > small

    def test_network_cycles_sum(self):
        array = SystolicArray()
        workloads = [GemmWorkload(8, 64, 64), GemmWorkload(8, 64, 64)]
        assert array.network_cycles(workloads) == 2 * array.schedule(workloads[0]).cycles

    def test_invalid_workload(self):
        with pytest.raises(ValueError):
            GemmWorkload(0, 4, 4)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SystolicArrayConfig(rows=0)


class TestScaleSim:
    def test_small_network_weights_fit(self):
        model = ScaleSimModel()
        report = model.simulate("tiny", [GemmWorkload(4, 64, 64)], invocations=10)
        assert report.weights_fit_on_chip
        assert report.dram_read_bytes == 64 * 64  # loaded once
        assert report.compute_cycles > 0
        assert report.macs == 10 * 4 * 64 * 64

    def test_large_network_streams_weights(self):
        model = ScaleSimModel(memory_config=MemoryConfig(sram_bytes=1024))
        report = model.simulate("big", [GemmWorkload(4, 256, 256)], invocations=3)
        assert not report.weights_fit_on_chip
        assert report.dram_read_bytes == 3 * 256 * 256

    def test_latency_positive(self):
        model = ScaleSimModel()
        report = model.simulate("net", [GemmWorkload(64, 512, 512)])
        assert model.latency_ms(report) > 0

    def test_invalid_invocations(self):
        with pytest.raises(ValueError):
            ScaleSimModel().simulate("x", [GemmWorkload(1, 1, 1)], invocations=0)


class TestEnergyModel:
    def test_voltage_scaling_quadratic(self):
        model = EnergyModel()
        assert model.voltage_scale(0.45) == pytest.approx(0.25)

    def test_lower_voltage_saves_energy(self):
        model = EnergyModel()
        assert model.mac_energy_j(1e9, 0.7) < model.mac_energy_j(1e9, 0.9)

    def test_effective_voltage_between_extremes(self):
        model = EnergyModel()
        effective = model.effective_voltage({0.9: 100, 0.7: 100})
        assert 0.7 < effective < 0.9

    def test_effective_voltage_empty(self):
        assert EnergyModel().effective_voltage({}) == NOMINAL_VOLTAGE

    def test_compute_energy_accepts_pairs(self):
        model = EnergyModel()
        a = model.compute_energy_j({0.8: 1000})
        b = model.compute_energy_j([(0.8, 1000)])
        assert a == pytest.approx(b)

    def test_breakdown_sums(self):
        model = EnergyModel()
        breakdown = model.breakdown({0.9: 1e9}, sram_bytes=1e6, dram_bytes=1e6)
        assert breakdown.total_j == pytest.approx(
            breakdown.compute_j + breakdown.sram_j + breakdown.dram_j + breakdown.overhead_j)
        assert 0 < breakdown.compute_fraction() < 1

    def test_breakdown_addition(self):
        model = EnergyModel()
        one = model.breakdown({0.9: 1e6}, 0, 0)
        both = one + one
        assert both.compute_j == pytest.approx(2 * one.compute_j)

    def test_invalid_voltage(self):
        with pytest.raises(ValueError):
            EnergyModel().voltage_scale(0.0)

    def test_battery_life_extension(self):
        battery = BatteryModel()
        assert battery.life_extension_percent(0.6) > 0
        assert battery.life_extension_percent(1.0) == pytest.approx(0.0)
        assert battery.battery_life_hours(0.5) > battery.battery_life_hours(1.0)

    def test_battery_invalid_scale(self):
        with pytest.raises(ValueError):
            BatteryModel().total_power_w(-0.1)


class TestDigitalLDO:
    def test_quantizes_to_step(self):
        ldo = DigitalLDO()
        assert ldo.quantize(0.7512) == pytest.approx(0.75)
        assert ldo.quantize(2.0) == pytest.approx(0.9)
        assert ldo.quantize(0.1) == pytest.approx(0.6)

    def test_set_voltage_records_transition(self):
        ldo = DigitalLDO()
        transition = ldo.set_voltage(0.75)
        assert ldo.voltage == pytest.approx(0.75)
        assert transition.latency_ns == pytest.approx((0.15 * 1000 / 50) * 90)
        assert ldo.num_switches == 1

    def test_noop_change_not_counted_as_switch(self):
        ldo = DigitalLDO()
        ldo.set_voltage(0.9)
        assert ldo.num_switches == 0
        assert len(ldo.trace) == 2

    def test_worst_case_latency_bounded(self):
        ldo = DigitalLDO()
        assert ldo.worst_case_latency_ns == pytest.approx(540.0)

    def test_regulation_efficiency(self):
        ldo = DigitalLDO()
        assert ldo.regulation_efficiency(15.2) == pytest.approx(0.998, abs=1e-3)
        assert ldo.regulation_efficiency(0.1) < 0.998
        with pytest.raises(ValueError):
            ldo.regulation_efficiency(0.0)

    def test_reset(self):
        ldo = DigitalLDO()
        ldo.set_voltage(0.7)
        ldo.reset()
        assert ldo.voltage == pytest.approx(0.9)
        assert ldo.num_switches == 0

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            LdoSpec(v_min=0.9, v_max=0.6)


class TestAnomalyRowAndAccelerator:
    def test_anomaly_row_overheads_are_small(self):
        row = AnomalyDetectionRow(128)
        area_frac, power_frac = row.overhead_fractions(195.5, 12.0)
        assert area_frac < 0.01 and power_frac < 0.01

    def test_anomaly_row_invalid(self):
        with pytest.raises(ValueError):
            AnomalyDetectionRow(0)
        with pytest.raises(ValueError):
            AnomalyDetectionRow(4).overhead_fractions(0.0, 1.0)

    def test_accelerator_report(self):
        accelerator = Accelerator()
        report = accelerator.report({"net": [GemmWorkload(32, 256, 256)]})
        assert report.peak_tops > 100
        assert report.total_area_mm2 > 200
        assert report.ad_area_overhead < 0.01
        assert report.ldo_power_overhead < 0.01
        assert report.latencies_ms["net"] > 0
        assert report.voltage_switch_latency_ns == pytest.approx(540.0)

    def test_accelerator_latency_scales_with_arrays(self):
        small = Accelerator(AcceleratorConfig(num_arrays=1))
        large = Accelerator(AcceleratorConfig(num_arrays=9))
        workload = [GemmWorkload(128, 1024, 1024)]
        assert large.network_latency_ms(workload) < small.network_latency_ms(workload)
