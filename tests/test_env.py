"""Tests for the embodied environment: subtasks, tasks, world dynamics, observations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.env import (
    ALL_SUBTASKS,
    Action,
    CALVIN_SUITE,
    EmbodiedWorld,
    IMAGE_SHAPE,
    LIBERO_SUITE,
    MANIPULATION_SUBTASKS,
    MANIPULATION_SUITE,
    MINECRAFT_SUBTASKS,
    MINECRAFT_SUITE,
    MOVEMENT_ACTIONS,
    NUM_ACTIONS,
    OBSERVATION_DIM,
    OXE_SUITE,
    SubtaskKind,
    SUITES,
    WorldConfig,
    get_task,
)


class TestSubtasks:
    def test_registry_lookup(self):
        spec = MINECRAFT_SUBTASKS.get("mine_logs")
        assert spec.kind is SubtaskKind.SEQUENTIAL
        assert spec.execution_action == Action.ATTACK
        assert "mine_logs" in MINECRAFT_SUBTASKS

    def test_unknown_subtask_raises(self):
        with pytest.raises(KeyError):
            MINECRAFT_SUBTASKS.get("fly_to_moon")

    def test_token_ids_are_unique_and_stable(self):
        ids = [ALL_SUBTASKS.token_id(name) for name in ALL_SUBTASKS.names]
        assert len(set(ids)) == len(ids)
        assert ALL_SUBTASKS.name_for_token(ids[0]) == ALL_SUBTASKS.names[0]

    def test_stochastic_subtasks_accept_alternates(self):
        spec = MINECRAFT_SUBTASKS.get("hunt_chicken")
        assert len(spec.accepts) > 1
        assert spec.execution_action in spec.accepts

    def test_nominal_steps_positive(self):
        for name in MINECRAFT_SUBTASKS.names:
            assert MINECRAFT_SUBTASKS.get(name).nominal_steps > 0

    def test_merged_registry_contains_both(self):
        assert "mine_logs" in ALL_SUBTASKS and "grasp_object" in ALL_SUBTASKS


class TestTasks:
    def test_minecraft_suite_has_nine_tasks(self):
        assert len(MINECRAFT_SUITE) == 9
        assert set(MINECRAFT_SUITE.task_names) >= {
            "wooden", "stone", "charcoal", "chicken", "coal", "iron", "wool", "seed", "log"}

    def test_cross_platform_suites_match_paper_table10(self):
        assert set(LIBERO_SUITE.task_names) == {"wine", "alphabet", "bbq"}
        assert set(CALVIN_SUITE.task_names) == {"button", "block", "handle"}
        assert set(OXE_SUITE.task_names) == {"eggplant", "coke", "carrot", "open", "move", "place"}

    def test_total_21_tasks(self):
        total = len(MINECRAFT_SUITE) + len(LIBERO_SUITE) + len(CALVIN_SUITE) + len(OXE_SUITE)
        assert total == 21

    def test_manipulation_suite_is_union(self):
        assert len(MANIPULATION_SUITE) == len(LIBERO_SUITE) + len(CALVIN_SUITE) + len(OXE_SUITE)

    def test_plans_reference_known_subtasks(self):
        for suite in SUITES.values():
            for task in suite.tasks():
                for subtask in task.plan:
                    assert subtask in suite.registry

    def test_target_is_last_subtask(self):
        task = MINECRAFT_SUITE.get("wooden")
        assert task.target == task.plan[-1]

    def test_prerequisite_graph_is_a_chain(self):
        graph = MINECRAFT_SUITE.get("iron").prerequisite_graph()
        assert graph.number_of_edges() == len(MINECRAFT_SUITE.get("iron").plan) - 1

    def test_get_task_lookup(self):
        assert get_task("wooden").benchmark == "minecraft"
        assert get_task("wine", benchmark="libero").name == "wine"
        with pytest.raises(KeyError):
            get_task("nonexistent")


class TestWorldDynamics:
    def _world(self, task="wooden", seed=0):
        return EmbodiedWorld(MINECRAFT_SUITE.get(task), MINECRAFT_SUBTASKS,
                             WorldConfig(), np.random.default_rng(seed))

    def test_requires_subtask_before_stepping(self):
        world = self._world()
        with pytest.raises(RuntimeError):
            world.step(Action.FORWARD)
        with pytest.raises(RuntimeError):
            world.observation()

    def test_oracle_completes_task(self):
        world = self._world()
        rng = np.random.default_rng(1)
        for subtask in world.task.plan:
            world.set_subtask(subtask)
            for _ in range(world.config.subtask_step_limit):
                probs = world.oracle_distribution()
                result = world.step(rng.choice(NUM_ACTIONS, p=probs))
                if result.subtask_completed:
                    break
        assert world.task_completed

    def test_prerequisites_block_completion(self):
        world = self._world()
        assert not world.prerequisites_met("craft_wooden_pickaxe")
        world.set_subtask("craft_wooden_pickaxe")
        for _ in range(60):
            world.step(Action.CRAFT)
        assert "craft_wooden_pickaxe" not in world.inventory

    def test_useful_subtasks_follow_plan_order(self):
        world = self._world()
        assert world.useful_subtasks() == ["mine_logs"]
        world.inventory.add("mine_logs")
        assert "craft_planks" in world.useful_subtasks()

    def test_unknown_subtask_rejected(self):
        world = self._world()
        assert not world.set_subtask("<invalid:99>")
        assert world.current_subtask is None

    def test_craft_subtask_skips_exploration(self):
        world = self._world()
        world.inventory.add("mine_logs")
        world.set_subtask("craft_planks")
        assert world.is_critical_step()  # directly in execution phase

    def test_sequential_execution_resets_on_wrong_action(self):
        world = self._world()
        world.inventory.add("mine_logs")
        world.set_subtask("craft_planks")
        world.step(Action.CRAFT)
        state = world._state
        assert state.progress == 1
        world.step(Action.JUMP)
        assert state.progress == 0

    def test_stochastic_execution_does_not_reset(self):
        world = self._world("wool", seed=3)
        world.inventory.update(["mine_logs", "craft_planks"])
        world.set_subtask("shear_sheep")
        state = world._state
        # Walk to the sheep first.
        for _ in range(200):
            if state.in_execution:
                break
            world.step(state.preferred_direction)
        world.step(Action.USE)
        progress = state.progress
        world.step(Action.JUMP)
        assert state.progress == progress

    def test_task_completion_flag(self):
        world = self._world("log")
        rng = np.random.default_rng(2)
        world.set_subtask("mine_logs")
        for _ in range(world.config.task_step_limit):
            probs = world.oracle_distribution()
            result = world.step(rng.choice(NUM_ACTIONS, p=probs))
            if result.task_completed:
                break
        assert world.task_completed
        with pytest.raises(RuntimeError):
            world.step(Action.FORWARD)

    def test_budgets(self):
        config = WorldConfig(subtask_step_limit=5, task_step_limit=10)
        world = EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS, config,
                              np.random.default_rng(0))
        world.set_subtask("mine_logs")
        for _ in range(5):
            world.step(Action.JUMP)
        assert world.subtask_budget_exhausted()
        assert not world.task_budget_exhausted()
        world.set_subtask("mine_logs")
        for _ in range(5):
            world.step(Action.JUMP)
        assert world.task_budget_exhausted()

    def test_waste_steps(self):
        world = self._world()
        world.waste_steps(7)
        assert world.steps_taken == 7
        with pytest.raises(ValueError):
            world.waste_steps(-1)

    def test_invalid_world_config(self):
        with pytest.raises(ValueError):
            WorldConfig(subtask_step_limit=0)

    def test_reset_clears_state(self):
        world = self._world()
        world.set_subtask("mine_logs")
        world.step(Action.FORWARD)
        world.reset()
        assert world.steps_taken == 0
        assert world.inventory == set()
        assert world.current_subtask is None


class TestOracleAndObservations:
    def _execution_world(self):
        world = EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS,
                              WorldConfig(), np.random.default_rng(5))
        world.inventory.add("mine_logs")
        world.set_subtask("craft_planks")
        return world

    def test_oracle_distribution_is_normalized(self, wooden_world):
        wooden_world.set_subtask("mine_logs")
        probs = wooden_world.oracle_distribution()
        assert probs.shape == (NUM_ACTIONS,)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_critical_steps_have_lower_entropy(self, wooden_world):
        wooden_world.set_subtask("mine_logs")
        exploration_entropy = wooden_world.oracle_entropy()
        execution_world = self._execution_world()
        execution_entropy = execution_world.oracle_entropy()
        assert execution_entropy < exploration_entropy

    def test_is_critical_matches_phase(self, wooden_world):
        wooden_world.set_subtask("mine_logs")
        assert not wooden_world.is_critical_step()
        assert self._execution_world().is_critical_step()

    def test_observation_shape_and_range(self, wooden_world):
        wooden_world.set_subtask("mine_logs")
        obs = wooden_world.observation()
        assert obs.shape == (OBSERVATION_DIM,)
        assert np.isfinite(obs).all()

    def test_observation_encodes_phase(self):
        world = self._execution_world()
        obs = world.observation()
        assert obs[1] == 1.0 and obs[0] == 0.0

    def test_observation_image_shape_and_range(self, wooden_world):
        wooden_world.set_subtask("mine_logs")
        image = wooden_world.observation_image()
        assert image.shape == IMAGE_SHAPE
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_execution_image_differs_from_exploration(self):
        exploration = EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS,
                                    WorldConfig(), np.random.default_rng(5))
        exploration.set_subtask("mine_logs")
        execution = self._execution_world()
        diff = np.abs(exploration.observation_image() - execution.observation_image()).mean()
        assert diff > 0.01

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_exploration_distance_never_negative(self, seed):
        world = EmbodiedWorld(MINECRAFT_SUITE.get("log"), MINECRAFT_SUBTASKS,
                              WorldConfig(), np.random.default_rng(seed))
        world.set_subtask("mine_logs")
        rng = np.random.default_rng(seed + 1)
        for _ in range(50):
            world.step(Action(int(rng.integers(0, NUM_ACTIONS))))
            assert world._state.distance >= 0
            assert 0 <= world._state.progress <= world._state.spec.execution_length


class TestKitchenSuite:
    """The generated kitchen-rearrangement benchmark (scenario diversity)."""

    def test_generation_is_deterministic(self):
        from repro.env import KITCHEN_SUITE, build_kitchen_suite

        again = build_kitchen_suite()
        assert again.task_names == KITCHEN_SUITE.task_names
        for name in again.task_names:
            assert again.get(name).plan == KITCHEN_SUITE.get(name).plan

    def test_registered_with_manipulation_subtasks(self):
        from repro.env import KITCHEN_SUITE

        assert SUITES["kitchen"] is KITCHEN_SUITE
        for task in KITCHEN_SUITE.tasks():
            assert task.benchmark == "kitchen"
            for subtask in task.plan:
                assert subtask in MANIPULATION_SUBTASKS

    def test_custom_size_and_seed(self):
        from repro.env import build_kitchen_suite

        small = build_kitchen_suite(num_tasks=3, seed=7)
        assert len(small) == 3
        other = build_kitchen_suite(num_tasks=3, seed=8)
        assert small.task_names != other.task_names
        with pytest.raises(ValueError):
            build_kitchen_suite(num_tasks=0)

    def test_kitchen_tasks_stay_out_of_the_planner_vocabulary(self):
        from repro.agents import build_vocabulary
        from repro.env import KITCHEN_SUITE

        vocab = build_vocabulary()
        assert not any(name in vocab.task_tokens
                       for name in KITCHEN_SUITE.task_names)

    def test_kitchen_world_runs(self):
        from repro.env import KITCHEN_SUITE

        task = KITCHEN_SUITE.tasks()[0]
        world = EmbodiedWorld(task, MANIPULATION_SUBTASKS, WorldConfig(),
                              np.random.default_rng(0))
        assert world.set_subtask(task.plan[0])
        world.step(Action.FORWARD)
        assert world.steps_taken == 1
