"""Run-table analytics and the publication pack (repro.eval.analysis).

Three layers of lockdown, per the statistical golden-test suite this layer
ships with:

* property tests for the deterministic statistics core (Wilson / bootstrap
  intervals, two-proportion significance) — bracketing, monotonicity in n,
  exact degeneracy at 0%/100%, fixed-seed determinism, and agreement of the
  hardcoded z table with scipy;
* aggregate-level robustness: torn final rows and merge-conflict handling
  feeding the analysis layer, plus the hoisted default energy model;
* byte-level determinism: building a pack twice is identical, and the
  committed golden pack regenerates hash-identical from its committed
  sweep tables.
"""

import csv
import json
import math
from pathlib import Path

import pytest
from scipy import stats as scipy_stats

from repro.eval import analysis
from repro.eval.analysis import (SUMMARY_COLUMNS, Z_SCORES, bootstrap_interval,
                                 build_figure, build_pack, diff_groups,
                                 diff_packs, discover_tables, group_records,
                                 significant_difference, two_proportion_z,
                                 verify_pack, wilson_interval)
from repro.eval.metrics import aggregate_rows
from repro.eval.runtable import (COLUMNS, DERIVED_PROFILE_COLUMNS,
                                 MergeConflictError, PROFILE_COLUMNS,
                                 RESULT_COLUMNS, RunRecord, RunTable,
                                 RunTableWriter, is_run_table)
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = REPO_ROOT / "tests" / "data" / "golden"


def make_record(condition="cond", seed=0, success=True, steps=10,
                energy_j=0.001, params=None, spec_key=None, flips=(2, 3)):
    """A synthetic run-table row with exact-round-trip payloads."""
    return RunRecord(
        spec_key=spec_key or f"key-{condition}",
        condition=condition,
        system="jarvis",
        task="wooden",
        seed=seed,
        trial_index=seed,
        success=success,
        steps=steps,
        planner_invocations=1 + seed % 2,
        controller_steps=steps,
        energy_j=energy_j,
        effective_voltage=0.9,
        planner_bits_flipped=flips[0],
        controller_bits_flipped=flips[1],
        planner_elements_clamped=1,
        controller_elements_clamped=0,
        mean_entropy=float("nan"),
        entropy_records=0,
        planner_macs='{"0.9": 120000.0}',
        controller_macs='{"0.78": 45000.0}',
        predictor_macs="{}",
        params=json.dumps(params or {"ber": "0.001"}),
    )


# ----------------------------------------------------------------------
# Statistics core: property tests
# ----------------------------------------------------------------------
class TestWilsonInterval:
    @pytest.mark.parametrize("successes,trials", [
        (0, 1), (1, 1), (0, 10), (10, 10), (1, 10), (3, 10), (5, 10),
        (50, 100), (97, 100), (1, 1000), (999, 1000),
    ])
    def test_brackets_point_estimate(self, successes, trials):
        lo, hi = wilson_interval(successes, trials)
        rate = successes / trials
        assert lo <= rate <= hi
        assert 0.0 <= lo and hi <= 1.0

    @pytest.mark.parametrize("confidence", sorted(Z_SCORES))
    def test_width_monotone_in_n(self, confidence):
        """Same empirical rate, more trials => strictly narrower interval."""
        widths = []
        for trials in (10, 40, 160, 640, 2560):
            lo, hi = wilson_interval(trials // 2, trials, confidence)
            widths.append(hi - lo)
        assert widths == sorted(widths, reverse=True)
        assert all(w1 > w2 for w1, w2 in zip(widths, widths[1:]))

    def test_degenerate_edges_exact(self):
        """0% has an exactly-0.0 lower bound, 100% an exactly-1.0 upper."""
        for trials in (1, 7, 100):
            lo, hi = wilson_interval(0, trials)
            assert lo == 0.0 and 0.0 < hi < 1.0
            lo, hi = wilson_interval(trials, trials)
            assert hi == 1.0 and 0.0 < lo < 1.0

    def test_tighter_than_higher_confidence(self):
        lo90, hi90 = wilson_interval(7, 10, 0.90)
        lo99, hi99 = wilson_interval(7, 10, 0.99)
        assert lo99 < lo90 and hi90 < hi99

    def test_z_table_matches_scipy(self):
        """The hardcoded quantiles are the true doubles scipy would produce."""
        for confidence, z in Z_SCORES.items():
            assert z == pytest.approx(
                float(scipy_stats.norm.ppf(0.5 + confidence / 2.0)),
                abs=1e-12)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError, match="confidence"):
            wilson_interval(1, 2, confidence=0.931)


class TestBootstrapInterval:
    def test_deterministic_under_fixed_seed(self):
        values = [1.0, 5.0, 2.0, 8.0, 3.0, 2.5, 9.0]
        assert bootstrap_interval(values, seed=42) == \
            bootstrap_interval(values, seed=42)
        assert bootstrap_interval(values, seed=42) != \
            bootstrap_interval(values, seed=43)

    @pytest.mark.parametrize("values", [
        [1.0], [1.0, 2.0], [0.0, 0.0, 0.0, 100.0],
        [5.0, 5.0, 5.0, 5.0], list(range(50)), [-3.0, 0.5, 2.25, 1e6],
    ])
    def test_brackets_sample_mean(self, values):
        lo, hi = bootstrap_interval(values, seed=0)
        mean = math.fsum(float(v) for v in values) / len(values)
        assert lo <= mean <= hi

    def test_constant_sample_degenerates(self):
        assert bootstrap_interval([7.5] * 10) == (7.5, 7.5)

    def test_width_shrinks_with_n(self):
        base = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo_s, hi_s = bootstrap_interval(base * 2, seed=1)
        lo_l, hi_l = bootstrap_interval(base * 40, seed=1)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_interval([])
        with pytest.raises(ValueError):
            bootstrap_interval([1.0], resamples=0)
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_interval([1.0, 2.0], confidence=0.5)


class TestSignificance:
    def test_clear_difference_is_significant(self):
        assert significant_difference(50, 100, 90, 100)
        assert two_proportion_z(50, 100, 90, 100) > 0  # B higher => positive

    def test_noise_is_not(self):
        assert not significant_difference(50, 100, 52, 100)

    def test_identical_rates_z_zero(self):
        assert two_proportion_z(3, 10, 3, 10) == 0.0
        assert two_proportion_z(0, 10, 0, 10) == 0.0  # degenerate pooled rate

    def test_symmetry(self):
        z_ab = two_proportion_z(40, 100, 60, 100)
        z_ba = two_proportion_z(60, 100, 40, 100)
        assert z_ab == -z_ba


# ----------------------------------------------------------------------
# Derived sidecar columns and the hoisted energy model
# ----------------------------------------------------------------------
class TestDerivedSidecarColumns:
    def test_column_sets(self):
        assert COLUMNS == RESULT_COLUMNS + PROFILE_COLUMNS
        assert set(DERIVED_PROFILE_COLUMNS) <= set(PROFILE_COLUMNS)
        for column in DERIVED_PROFILE_COLUMNS:
            assert column not in RESULT_COLUMNS

    def test_derived_values(self):
        record = make_record()
        assert record.macs_total == math.fsum(
            record.macs_by_voltage().values())
        assert record.flips_total == record.planner_bits_flipped \
            + record.controller_bits_flipped
        expected = DEFAULT_ENERGY_MODEL.compute_energy_j(
            record.macs_by_voltage(), include_overheads=False)
        assert record.energy_model_j == expected
        # Compute-only energy is the overhead-free complement of energy_j.
        assert record.energy_model_j < DEFAULT_ENERGY_MODEL.compute_energy_j(
            record.macs_by_voltage(), include_overheads=True)

    def test_sidecar_roundtrip_recomputes_derived(self, tmp_path):
        records = [make_record(seed=s) for s in range(3)]
        path = tmp_path / "p.csv"
        with RunTableWriter(path, profile=True) as writer:
            for record in records:
                writer.write(record)
        with path.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert set(DERIVED_PROFILE_COLUMNS) <= set(rows[0])
        assert rows[0]["flips_total"] == "5"
        back = RunTable.read_csv(path)
        assert [r.macs_total for r in back] == \
            [r.macs_total for r in records]
        assert [r.result_payload() for r in back] == \
            [r.result_payload() for r in records]

    def test_legacy_sidecar_header_still_appends(self, tmp_path):
        """A pre-derived-columns sidecar keeps its header when appended to."""
        legacy_header = RESULT_COLUMNS + ("wall_time_s", "worker_id",
                                          "batch_size", "vector_path")
        path = tmp_path / "legacy.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(legacy_header)
        with RunTableWriter(path, profile=True) as writer:
            assert writer.columns == legacy_header
            writer.write(make_record())
        table = RunTable.read_csv(path)
        assert len(table) == 1

    def test_json_mirror_roundtrip(self, tmp_path):
        records = [make_record(seed=s) for s in range(2)]
        path = RunTable(records).write_json(tmp_path / "p.json", profile=True)
        payload = json.loads(path.read_text())
        assert set(DERIVED_PROFILE_COLUMNS) <= set(payload[0])
        back = RunTable.read_json(path)
        assert [r.result_payload() for r in back] == \
            [r.result_payload() for r in records]

    def test_is_run_table(self, tmp_path):
        table_path = RunTable([make_record()]).write_csv(tmp_path / "t.csv")
        assert is_run_table(table_path)
        other = tmp_path / "other.csv"
        other.write_text("a,b,c\n1,2,3\n")
        assert not is_run_table(other)
        assert not is_run_table(tmp_path / "missing.csv")
        assert not is_run_table(tmp_path)


class TestDefaultEnergyModel:
    def test_aggregate_rows_identical_with_fresh_model(self):
        """The hoisted module-level default changes no numbers."""
        records = [make_record(seed=s, success=s % 2 == 0, steps=10 + s)
                   for s in range(5)]
        rows = [(r.success, r.steps, r.planner_invocations, r.energy_j,
                 r.macs_by_voltage(), 0.4 + 0.01 * r.seed, True)
                for r in records]
        hoisted = aggregate_rows(rows)
        fresh = aggregate_rows(rows, EnergyModel())
        assert hoisted == fresh

    def test_default_model_is_default_config(self):
        assert DEFAULT_ENERGY_MODEL.config == EnergyModel().config


# ----------------------------------------------------------------------
# Grouped summaries and diffs
# ----------------------------------------------------------------------
class TestGroupRecords:
    def _records(self):
        records = []
        for ber, rate in (("0.001", 0.75), ("0.003", 0.25)):
            for seed in range(8):
                records.append(make_record(
                    condition=f"ber={ber}", seed=seed,
                    success=seed < 8 * rate, steps=30 + seed,
                    params={"ber": ber}))
        return records

    def test_group_by_condition(self):
        groups = group_records(self._records())
        assert [g.label() for g in groups] == ["ber=0.001", "ber=0.003"]
        assert [g.success_rate for g in groups] == [0.75, 0.25]
        for g in groups:
            assert g.num_trials == 8
            assert g.success_lo <= g.success_rate <= g.success_hi
            assert g.steps_lo <= g.mean_steps <= g.steps_hi
            assert g.energy_lo <= g.mean_energy_j <= g.energy_hi
            assert g.flips_total == 8 * 5
            assert g.macs_total == pytest.approx(8 * 165000.0)

    def test_group_by_params_axis(self):
        """Axes resolve against the spec's params labels, not just fields."""
        groups = group_records(self._records(), by=("ber",))
        assert [dict(g.group)["ber"] for g in groups] == ["0.001", "0.003"]

    def test_group_by_field_and_missing_axis(self):
        groups = group_records(self._records(), by=("system", "nope"))
        assert len(groups) == 1
        assert dict(groups[0].group) == {"system": "jarvis", "nope": ""}

    def test_deterministic_given_order(self):
        records = self._records()
        assert group_records(records) == group_records(records)

    def test_summary_columns_match_as_row(self):
        groups = group_records(self._records())
        assert tuple(groups[0].as_row()) == SUMMARY_COLUMNS

    def test_diff_groups_flags_significant_change(self):
        records = self._records()
        flipped = [make_record(condition=r.condition, seed=r.seed,
                               success=dict(json.loads(r.params))["ber"] == "0.003"
                               or r.seed >= 2,
                               steps=r.steps, params=json.loads(r.params))
                   for r in records]
        a = group_records(records)
        b = group_records(flipped)
        deltas, only_a, only_b = diff_groups(a, b)
        assert not only_a and not only_b
        by_label = {d.label(): d for d in deltas}
        assert by_label["ber=0.003"].success_delta == 0.75
        assert by_label["ber=0.003"].significant
        assert not by_label["ber=0.001"].significant

    def test_diff_groups_unmatched_sides(self):
        a = group_records(self._records())
        deltas, only_a, only_b = diff_groups(a, a[:1])
        assert [d.label() for d in deltas] == ["ber=0.001"]
        assert [g.label() for g in only_a] == ["ber=0.003"]
        assert only_b == []


# ----------------------------------------------------------------------
# Torn rows and merge conflicts feeding analysis
# ----------------------------------------------------------------------
class TestRobustAggregation:
    def test_torn_final_row_does_not_shift_aggregates(self, tmp_path):
        """strict=False recovery: the torn row vanishes, nothing else moves."""
        records = [make_record(seed=s, success=s % 2 == 0) for s in range(6)]
        clean = tmp_path / "clean.csv"
        RunTable(records).write_csv(clean)
        torn = tmp_path / "torn.csv"
        full = clean.read_text()
        # Tear the last row in the middle of its quoted JSON params cell.
        torn.write_text(full[:full.rindex('"{""ber') + 6])
        recovered = RunTable.read_csv(torn, strict=False)
        assert len(recovered) == len(records) - 1
        expected = group_records(records[:-1])
        assert group_records(recovered) == expected

    def test_torn_row_in_sweep_dir_matches_untorn_figure(self, tmp_path):
        records = [make_record(seed=s, success=s < 4) for s in range(6)]
        clean_dir = tmp_path / "clean"
        torn_dir = tmp_path / "torn"
        RunTable(records[:-1]).write_csv(clean_dir / "t.csv")
        RunTable(records).write_csv(torn_dir / "t.csv")
        path = torn_dir / "t.csv"
        data = path.read_bytes()
        final_row = data.rstrip(b"\n").rindex(b"\nkey-")
        path.write_bytes(data[:final_row + 20])  # mid final row
        clean_figure = build_figure("t", [clean_dir / "t.csv"])
        torn_figure = build_figure("t", [torn_dir / "t.csv"])
        assert torn_figure.rows == clean_figure.rows

    def test_merge_duplicates_dedupe_into_figure(self, tmp_path):
        """Identical duplicate cells (reclaimed leases) aggregate once."""
        records = [make_record(seed=s) for s in range(4)]
        a_dir, b_dir = tmp_path / "shard-a", tmp_path / "shard-b"
        RunTable(records[:3]).write_csv(a_dir / "t.csv")
        RunTable(records[1:]).write_csv(b_dir / "t.csv")
        figure = build_figure("t", [a_dir / "t.csv", b_dir / "t.csv"])
        assert figure.trials == 4
        assert figure.rows == build_figure(
            "t", [RunTable(records).write_csv(tmp_path / "full" / "t.csv")]
        ).rows

    def test_merge_conflict_refuses_to_aggregate(self, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        RunTable([make_record(seed=0, steps=10)]).write_csv(a_dir / "t.csv")
        RunTable([make_record(seed=0, steps=99)]).write_csv(b_dir / "t.csv")
        with pytest.raises(MergeConflictError):
            build_figure("t", [a_dir / "t.csv", b_dir / "t.csv"])


# ----------------------------------------------------------------------
# Publication packs
# ----------------------------------------------------------------------
def write_sweep(root: Path) -> Path:
    sweep = root / "sweep"
    without = [make_record(condition=f"without/ber={ber}", seed=s,
                           success=s % 2 == 0, steps=20 + s,
                           params={"ber": ber}, spec_key=f"kw{ber}")
               for ber in ("0.001", "0.003") for s in range(4)]
    with_ad = [make_record(condition=f"with/ber={ber}", seed=s,
                           success=True, steps=18 + s,
                           params={"ber": ber}, spec_key=f"ka{ber}")
               for ber in ("0.001", "0.003") for s in range(4)]
    RunTable(without).write_csv(sweep / "ad" / "ber-sweep-without-ad.csv")
    RunTable(with_ad).write_csv(sweep / "ad" / "ber-sweep-with-ad.csv")
    RunTable([make_record(seed=s) for s in range(4)]).write_csv(
        sweep / "repetition-study-wooden.csv")
    # Bookkeeping directories must never contribute figures.
    RunTable(without).write_csv(sweep / "ad" / "profiles" / "x.csv",
                                profile=True)
    (sweep / "plans").mkdir()
    (sweep / "plans" / "noise.csv").write_text("not,a,table\n")
    return sweep


class TestPublicationPack:
    def test_discovery_layout(self, tmp_path):
        figures = discover_tables(write_sweep(tmp_path))
        assert sorted(figures) == ["ad", "repetition-study-wooden"]
        assert [p.name for p in figures["ad"]] == \
            ["ber-sweep-with-ad.csv", "ber-sweep-without-ad.csv"]

    def test_build_twice_is_byte_identical(self, tmp_path):
        sweep = write_sweep(tmp_path)
        manifest_a = build_pack(sweep, tmp_path / "pack-a")
        manifest_b = build_pack(sweep, tmp_path / "pack-b")
        assert manifest_a == manifest_b
        for relative in list(manifest_a["files"]) + ["manifest.json"]:
            assert (tmp_path / "pack-a" / relative).read_bytes() == \
                (tmp_path / "pack-b" / relative).read_bytes()

    def test_artifact_triplet_per_figure_and_manifest_hashes(self, tmp_path):
        sweep = write_sweep(tmp_path)
        manifest = build_pack(sweep, tmp_path / "pack")
        for name in ("ad", "repetition-study-wooden"):
            for extension in ("json", "csv", "md"):
                assert f"figures/{name}.{extension}" in manifest["files"]
        assert verify_pack(tmp_path / "pack") == []
        payload = json.loads(
            (tmp_path / "pack" / "figures" / "ad.json").read_text())
        assert payload["columns"] == list(SUMMARY_COLUMNS)
        assert payload["trials"] == 16
        with (tmp_path / "pack" / "figures" / "ad.csv").open(newline="") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == len(payload["rows"]) == 4

    def test_verify_detects_tampering(self, tmp_path):
        build_pack(write_sweep(tmp_path), tmp_path / "pack")
        target = tmp_path / "pack" / "figures" / "ad.csv"
        target.write_text(target.read_text() + "tampered\n")
        problems = verify_pack(tmp_path / "pack")
        assert problems and "figures/ad.csv" in problems[0]

    def test_diff_identical_and_changed(self, tmp_path):
        sweep = write_sweep(tmp_path)
        build_pack(sweep, tmp_path / "pack-a")
        build_pack(sweep, tmp_path / "pack-b")
        assert diff_packs(tmp_path / "pack-a", tmp_path / "pack-b").identical

        # Flip one campaign's results and rebuild: that figure must show a
        # delta with a significance verdict, the other stays unchanged.
        flipped = [make_record(condition=f"without/ber={ber}", seed=s,
                               success=False, steps=20 + s,
                               params={"ber": ber}, spec_key=f"kw{ber}")
                   for ber in ("0.001", "0.003") for s in range(4)]
        RunTable(flipped).write_csv(
            sweep / "ad" / "ber-sweep-without-ad.csv")
        build_pack(sweep, tmp_path / "pack-c")
        diff = diff_packs(tmp_path / "pack-a", tmp_path / "pack-c")
        assert not diff.identical
        assert diff.changed == ("ad",)
        assert diff.unchanged == ("repetition-study-wooden",)
        labels = {d.label(): d for d in diff.deltas["ad"]}
        assert labels["ber-sweep-without-ad/without/ber=0.001"].success_delta \
            == -0.5
        assert "differs" in diff.format()

    def test_empty_sweep_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            build_pack(tmp_path / "empty", tmp_path / "pack")


# ----------------------------------------------------------------------
# Golden pack: the committed fixture regenerates byte-identically
# ----------------------------------------------------------------------
class TestGoldenPack:
    def test_fixture_is_committed(self):
        assert (GOLDEN / "sweep").is_dir()
        assert (GOLDEN / "pack" / "manifest.json").is_file()

    def test_golden_pack_regenerates_byte_identical(self, tmp_path):
        """The figure-level analogue of the serial == parallel invariant."""
        build_pack(GOLDEN / "sweep", tmp_path / "pack")
        fresh = sorted(p.relative_to(tmp_path / "pack").as_posix()
                       for p in (tmp_path / "pack").rglob("*") if p.is_file())
        committed = sorted(p.relative_to(GOLDEN / "pack").as_posix()
                           for p in (GOLDEN / "pack").rglob("*")
                           if p.is_file())
        assert fresh == committed
        for relative in fresh:
            assert (tmp_path / "pack" / relative).read_bytes() == \
                (GOLDEN / "pack" / relative).read_bytes(), relative

    def test_golden_manifest_hashes_verify(self):
        assert verify_pack(GOLDEN / "pack") == []

    def test_golden_tool_check_passes(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "golden_pack", REPO_ROOT / "tools" / "golden_pack.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.check_pack() == 0
