"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mission_defaults(self):
        args = build_parser().parse_args(["mission"])
        assert args.task == "wooden"
        assert args.trials == 10
        assert not args.ad and not args.wr and not args.vs

    def test_mission_flags(self):
        args = build_parser().parse_args(
            ["mission", "--task", "stone", "--trials", "3", "--ad", "--wr", "--vs",
             "--planner-voltage", "0.78"])
        assert args.task == "stone" and args.trials == 3
        assert args.ad and args.wr and args.vs
        assert args.planner_voltage == pytest.approx(0.78)

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.target == "controller"
        assert len(args.bers) == 4

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--target", "nobody"])

    def test_engine_args_on_trial_subcommands(self):
        for command in (["mission"], ["characterize"], ["campaign", "overall"]):
            args = build_parser().parse_args(command)
            assert args.jobs == 1 and args.batch is None and args.out is None
        args = build_parser().parse_args(
            ["campaign", "wr", "--jobs", "4", "--batch", "8", "--out", "runs/x"])
        assert args.jobs == 4 and args.batch == 8 and args.out == "runs/x"

    def test_invalid_batch_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "wr", "--batch", "0"])

    def test_paper_preset_registered(self):
        from repro.cli import CAMPAIGN_PRESETS, PAPER_PRESET_CHAIN

        args = build_parser().parse_args(["campaign", "paper"])
        assert args.preset == "paper"
        assert "paper" in CAMPAIGN_PRESETS
        # The paper sweep chains exactly the figure/table presets; extras
        # beyond the paper (kitchen, the generated catalog scenarios, and
        # the fleet runtime) stay out of the chain.
        assert set(PAPER_PRESET_CHAIN) == set(CAMPAIGN_PRESETS) - {
            "paper", "kitchen", "navigation", "assembly", "fleet"}

    def test_kitchen_preset_registered(self):
        from repro.cli import CAMPAIGN_PRESETS

        args = build_parser().parse_args(["campaign", "kitchen", "--trials", "2"])
        assert args.preset == "kitchen"
        assert "kitchen" in CAMPAIGN_PRESETS

    def test_mission_system_override(self):
        args = build_parser().parse_args(["mission", "--system", "jarvis-nopredictor"])
        assert args.system == "jarvis-nopredictor"
        assert build_parser().parse_args(["mission"]).system is None


class TestCommands:
    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "default policy: C" in out
        assert out.count("->") >= 6

    def test_hardware_command(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "peak TOPS" in out
        assert "jarvis_planner" in out

    def test_systems_command_lists_variant_keys(self, capsys):
        """The smoke test of the predictor-less / custom-quantization keys."""
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for key in ("jarvis", "jarvis-nopredictor", "jarvis-rotated-nopredictor",
                    "jarvis-acc20", "jarvis-int4-acc16", "controller-rt1-kitchen"):
            assert key in out
        assert "system keys" in out

    def test_mission_command_clean(self, jarvis_system, capsys):
        assert main(["mission", "--task", "wooden", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "success_rate" in out

    def test_mission_command_full_create(self, jarvis_system_rotated, capsys):
        code = main(["mission", "--task", "wooden", "--trials", "2", "--ad", "--wr", "--vs",
                     "--planner-voltage", "0.78"])
        assert code == 0
        assert "AD+WR+VS(C)" in capsys.readouterr().out

    def test_characterize_command(self, jarvis_system, capsys):
        code = main(["characterize", "--target", "controller", "--task", "wooden",
                     "--trials", "2", "--bers", "1e-5", "1e-2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate vs. BER" in out

    def test_campaign_repetitions_with_batch_and_out(self, jarvis_system, capsys,
                                                     tmp_path):
        code = main(["campaign", "repetitions", "--trials", "2", "--batch", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "repetition study" in out
        assert "run tables written under" in out
        assert list(tmp_path.glob("*.csv"))  # table persisted at the top level

    def test_mission_reports_profile(self, jarvis_system, capsys, tmp_path):
        code = main(["mission", "--task", "wooden", "--trials", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run table:" in out and "profile:" in out


class TestDistributedCli:
    def test_scheduling_flags_parse(self):
        args = build_parser().parse_args(["campaign", "vs", "--dry-run",
                                          "--shard", "2/4"])
        assert args.dry_run and args.shard == "2/4" and args.queue is None
        args = build_parser().parse_args(["campaign", "vs", "--queue", "q"])
        assert args.queue == "q" and not args.dry_run

    def test_worker_parser(self):
        args = build_parser().parse_args(["worker", "--queue", "q", "--jobs",
                                          "2", "--wait", "--max-tasks", "3"])
        assert args.queue == "q" and args.jobs == 2 and args.wait
        assert args.max_tasks == 3 and args.lease_ttl == 120.0
        assert args.queue_url is None and args.plan is None
        args = build_parser().parse_args(["worker", "--queue-url",
                                          "http://h:1", "--plan", "demo"])
        assert args.queue is None and args.queue_url == "http://h:1"
        assert args.plan == "demo"

    def test_worker_needs_exactly_one_backend(self, capsys):
        assert main(["worker"]) == 2  # neither backend
        assert "--queue DIR or --queue-url URL" in capsys.readouterr().out
        assert main(["worker", "--queue", "q", "--queue-url",
                     "http://h:1"]) == 2  # both backends
        assert "--queue DIR or --queue-url URL" in capsys.readouterr().out

    def test_merge_parser(self):
        args = build_parser().parse_args(["merge", "out", "a", "b"])
        assert args.out == "out" and args.dirs == ["a", "b"]
        assert not args.overwrite

    def test_dry_run_prints_cells_without_executing(self, capsys, tmp_path):
        code = main(["campaign", "repetitions", "--trials", "4", "--dry-run",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and "nothing was trained or executed" in out
        assert not list(tmp_path.glob("*.csv"))  # really did not run

    def test_dry_run_reports_shard_split(self, capsys):
        code = main(["campaign", "repetitions", "--trials", "8", "--dry-run",
                     "--shard", "1/2"])
        assert code == 0
        assert "shard 1/2:" in capsys.readouterr().out

    def test_shard_requires_out(self, capsys):
        assert main(["campaign", "repetitions", "--shard", "1/2"]) == 2
        assert "--shard needs --out" in capsys.readouterr().out

    def test_queue_and_shard_are_exclusive(self, capsys):
        code = main(["campaign", "repetitions", "--queue", "q",
                     "--shard", "1/2"])
        assert code == 2
        assert "pick one" in capsys.readouterr().out

    def test_invalid_shard_reports_error(self, capsys):
        assert main(["campaign", "repetitions", "--dry-run",
                     "--shard", "9/4"]) == 2
        assert "shard" in capsys.readouterr().out

    def test_shard_runs_merge_to_serial_bytes(self, jarvis_system, capsys,
                                              tmp_path):
        """End-to-end static sharding through the CLI: two shard runs plus
        `merge` reproduce the serial table byte for byte."""
        trials = ["campaign", "repetitions", "--trials", "4"]
        assert main([*trials, "--out", str(tmp_path / "serial")]) == 0
        for index in (1, 2):
            code = main([*trials, "--shard", f"{index}/2",
                         "--out", str(tmp_path / f"shard{index}")])
            assert code == 0
        out = capsys.readouterr().out
        assert "belong to other shards" in out
        assert main(["merge", str(tmp_path / "merged"),
                     str(tmp_path / "shard1"), str(tmp_path / "shard2")]) == 0
        merged_out = capsys.readouterr().out
        assert "INCOMPLETE" not in merged_out
        serial = next((tmp_path / "serial").glob("*.csv"))
        merged = tmp_path / "merged" / serial.name
        assert merged.read_bytes() == serial.read_bytes()

    def test_merge_reports_missing_inputs(self, capsys, tmp_path):
        assert main(["merge", str(tmp_path / "out"),
                     str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_merge_with_no_tables_fails(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["merge", str(tmp_path / "out"), str(empty)]) == 1
        assert "no run tables found" in capsys.readouterr().out


class TestReportCli:
    """`repro-create report`: pack building, checking, diffing (no models)."""

    @staticmethod
    def _sweep(root, success=True):
        from test_analysis import make_record

        from repro.eval.runtable import RunTable

        records = [make_record(seed=s, success=success or s % 2 == 0)
                   for s in range(4)]
        RunTable(records).write_csv(root / "study" / "t.csv")
        return root

    def test_report_parser(self):
        args = build_parser().parse_args(
            ["report", "sweep", "--out", "pack", "--confidence", "0.99"])
        assert args.sweep == "sweep" and args.out == "pack"
        assert args.confidence == pytest.approx(0.99)
        args = build_parser().parse_args(["report", "--diff", "a", "b"])
        assert args.diff == ["a", "b"] and args.sweep is None

    def test_build_then_check_roundtrip(self, capsys, tmp_path):
        sweep = self._sweep(tmp_path / "sweep")
        pack = tmp_path / "pack"
        assert main(["report", str(sweep), "--out", str(pack)]) == 0
        out = capsys.readouterr().out
        assert "study" in out and "pack:" in out and "hash" in out
        assert (pack / "manifest.json").is_file()
        assert main(["report", "--check", str(pack)]) == 0
        assert "verifies against its manifest" in capsys.readouterr().out

    def test_check_detects_corruption(self, capsys, tmp_path):
        pack = tmp_path / "pack"
        assert main(["report", str(self._sweep(tmp_path / "sweep")),
                     "--out", str(pack)]) == 0
        (pack / "figures" / "study.csv").unlink()
        assert main(["report", "--check", str(pack)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_diff_exit_codes(self, capsys, tmp_path):
        sweep_a = self._sweep(tmp_path / "a")
        sweep_b = self._sweep(tmp_path / "b", success=False)
        for name in ("a", "b"):
            assert main(["report", str(tmp_path / name),
                         "--out", str(tmp_path / f"pack-{name}")]) == 0
        assert main(["report", "--diff", str(tmp_path / "pack-a"),
                     str(tmp_path / "pack-a")]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["report", "--diff", str(tmp_path / "pack-a"),
                     str(tmp_path / "pack-b")]) == 1
        assert "differs" in capsys.readouterr().out

    def test_report_errors(self, capsys, tmp_path):
        # build without --out, missing sweep, no mode at all: all exit 2.
        assert main(["report", str(tmp_path)]) == 2
        assert main(["report", str(tmp_path / "nope"), "--out",
                     str(tmp_path / "p")]) == 2
        assert main(["report"]) == 2
        assert main(["report", str(tmp_path), "--out", str(tmp_path / "p"),
                     "--confidence", "0.42"]) == 2
        out = capsys.readouterr().out
        assert "error:" in out
