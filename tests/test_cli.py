"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mission_defaults(self):
        args = build_parser().parse_args(["mission"])
        assert args.task == "wooden"
        assert args.trials == 10
        assert not args.ad and not args.wr and not args.vs

    def test_mission_flags(self):
        args = build_parser().parse_args(
            ["mission", "--task", "stone", "--trials", "3", "--ad", "--wr", "--vs",
             "--planner-voltage", "0.78"])
        assert args.task == "stone" and args.trials == 3
        assert args.ad and args.wr and args.vs
        assert args.planner_voltage == pytest.approx(0.78)

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.target == "controller"
        assert len(args.bers) == 4

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--target", "nobody"])


class TestCommands:
    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "default policy: C" in out
        assert out.count("->") >= 6

    def test_hardware_command(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "peak TOPS" in out
        assert "jarvis_planner" in out

    def test_mission_command_clean(self, jarvis_system, capsys):
        assert main(["mission", "--task", "wooden", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "success_rate" in out

    def test_mission_command_full_create(self, jarvis_system_rotated, capsys):
        code = main(["mission", "--task", "wooden", "--trials", "2", "--ad", "--wr", "--vs",
                     "--planner-voltage", "0.78"])
        assert code == 0
        assert "AD+WR+VS(C)" in capsys.readouterr().out

    def test_characterize_command(self, jarvis_system, capsys):
        code = main(["characterize", "--target", "controller", "--task", "wooden",
                     "--trials", "2", "--bers", "1e-5", "1e-2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate vs. BER" in out
