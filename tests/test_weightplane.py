"""Tests for the kernel plan cache and the shared-memory weight plane.

Covers the plan/context split (`KernelPlan` / plan-backed `KernelContext`),
bit-identity of plan-reuse and shared-memory execution — fault-free and
under injection — segment lifecycle (publish/attach/unlink, orphan
sweeping), the ``REPRO_SHM=0`` fallback, and the registry eviction hook
that keeps the campaign engine's worker caches coherent.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.eval.campaign as campaign
from repro.agents.executor import MissionExecutor
from repro.agents.registry import clear_system_cache
from repro.eval import TrialSpec, run_campaign
from repro.faults import ErrorInjector, SingleBitErrorModel
from repro.quant import BatchedKernel, GemmHooks, KernelContext, KernelPlan
from repro.quant import weightplane

SHM_ROOT = Path("/dev/shm")


def _own_segments() -> list[str]:
    prefix = f"{weightplane.SEGMENT_PREFIX}-{os.getpid()}-"
    try:
        return sorted(p.name for p in SHM_ROOT.iterdir()
                      if p.name.startswith(prefix))
    except OSError:
        return []


@pytest.fixture()
def plan_state(deployed_planner, deployed_controller):
    """Snapshot/restore the session models' plan caches around a test."""
    saved = [(model, model._plan, model._plan_shared)
             for model in (deployed_planner, deployed_controller)]
    yield
    for model, plan, shared in saved:
        model._plan = plan
        model._plan_shared = shared


@pytest.fixture()
def clean_plane():
    """Tear down any segments a test published (idempotent)."""
    yield
    weightplane.unlink_all()
    weightplane._ATTACHED.clear()


class TestKernelPlan:
    def test_plan_cached_and_provenance(self, deployed_planner, plan_state):
        deployed_planner._plan = None
        deployed_planner._plan_shared = False
        assert deployed_planner.plan_provenance() == "miss"
        plan = deployed_planner.kernel_plan()
        assert deployed_planner.kernel_plan() is plan
        assert deployed_planner.plan_provenance() == "hit"
        assert len(plan.content_hash) == 64
        assert set(plan.component_names()) == set(deployed_planner._quantized)

    def test_plan_backed_context_bit_identical(self, deployed_planner,
                                               plan_state, rng):
        fresh = KernelContext(deployed_planner._quantized,
                              spec=deployed_planner.spec)
        reused = deployed_planner.kernel_context()
        x = rng.normal(size=(5, deployed_planner.config.dim))
        for name in ("layer0.q", "layer0.gate", "head"):
            assert np.array_equal(fresh.qgemm(name, x), reused.qgemm(name, x))
        assert fresh.counters.macs == reused.counters.macs
        assert fresh.counters.gemm_calls == reused.counters.gemm_calls

    def test_plan_backed_bit_identical_under_injection(self, deployed_planner,
                                                       plan_state, rng):
        def context(plan_backed: bool) -> KernelContext:
            injector = ErrorInjector(SingleBitErrorModel(bit=20, rate=0.05),
                                     rng=np.random.default_rng(11))
            hooks = GemmHooks(injector=injector)
            if plan_backed:
                return deployed_planner.kernel_context(hooks)
            return KernelContext(deployed_planner._quantized, hooks=hooks,
                                 spec=deployed_planner.spec)

        fresh, reused = context(False), context(True)
        x = rng.normal(size=(4, deployed_planner.config.dim))
        for name in ("layer0.q", "layer0.up"):
            assert np.array_equal(fresh.qgemm(name, x), reused.qgemm(name, x))
        assert fresh.counters.bits_flipped == reused.counters.bits_flipped
        assert fresh.counters.bits_flipped > 0

    def test_register_copies_on_write(self, deployed_planner, plan_state):
        plan = deployed_planner.kernel_plan()
        sharer = deployed_planner.kernel_context()
        forked = deployed_planner.kernel_context()
        layer = deployed_planner._quantized["head"]
        renamed = type(layer).__new__(type(layer))
        renamed.__dict__.update(layer.__dict__)
        renamed.name = "extra"
        forked.register(renamed)
        assert "extra" in forked._entries
        assert "extra" not in plan.entries
        assert "extra" not in sharer._entries
        assert forked.plan is None
        assert sharer.plan is plan

    def test_adopt_plan_hash_mismatch_rejected(self, deployed_planner,
                                               deployed_controller, plan_state):
        foreign = KernelPlan(deployed_controller._quantized,
                             spec=deployed_controller.spec)
        with pytest.raises(ValueError, match="hash"):
            deployed_planner.adopt_plan(foreign)

    def test_plan_cache_state_combination(self):
        class _Model:
            def __init__(self, state):
                self._state = state

            def plan_provenance(self):
                return self._state

        def state(planner, controller):
            executor = object.__new__(MissionExecutor)
            executor.planner = planner
            executor.controller = controller
            return executor.plan_cache_state()

        assert state(_Model("hit"), _Model("hit")) == "hit"
        assert state(_Model("miss"), _Model("hit")) == "miss"
        assert state(_Model("shm"), _Model("miss")) == "shm"
        assert state(None, _Model("hit")) == "hit"
        assert state(None, object()) == ""


class TestWeightPlane:
    def test_publish_attach_roundtrip(self, deployed_planner, plan_state,
                                      clean_plane, rng):
        plan = deployed_planner.kernel_plan()
        manifest = weightplane.publish(plan)
        assert manifest.segment in _own_segments()
        assert weightplane.publish(plan) is manifest  # idempotent
        attached = weightplane.attach(manifest)
        assert weightplane.attach(manifest) is attached  # idempotent
        assert attached.shared
        assert attached.content_hash == plan.content_hash
        for name, entry in plan.entries.items():
            twin = attached.entries[name]
            assert np.array_equal(entry.weight_q, twin.weight_q)
            assert np.array_equal(entry.weight_f, twin.weight_f)
            assert entry.combined_scale == twin.combined_scale
            assert entry.bound_acc == twin.bound_acc
            assert entry.wrap_free == twin.wrap_free
            assert not twin.weight_q.flags.writeable
        x = rng.normal(size=(3, deployed_planner.config.dim))
        assert np.array_equal(KernelContext(plan=plan).qgemm("layer0.q", x),
                              KernelContext(plan=attached).qgemm("layer0.q", x))
        weightplane.unlink_all()
        assert not _own_segments()

    def test_attach_gone_segment_raises(self, deployed_planner, plan_state,
                                        clean_plane):
        manifest = weightplane.publish(deployed_planner.kernel_plan())
        weightplane.unlink_all()
        weightplane._ATTACHED.clear()
        with pytest.raises(weightplane.SharedMemoryUnavailable):
            weightplane.attach(manifest)

    def test_sweep_orphans_reclaims_dead_creators_only(self, clean_plane):
        dead_pid = int(subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True).stdout)
        orphan = SHM_ROOT / f"{weightplane.SEGMENT_PREFIX}-{dead_pid}-deadbeef"
        live = SHM_ROOT / f"{weightplane.SEGMENT_PREFIX}-{os.getpid()}-alive0"
        orphan.write_bytes(b"x")
        live.write_bytes(b"x")
        try:
            removed = weightplane.sweep_orphans()
            assert orphan.name in removed
            assert not orphan.exists()
            assert live.exists()  # live creators are never swept
        finally:
            orphan.unlink(missing_ok=True)
            live.unlink(missing_ok=True)

    def test_disabled_by_env(self, deployed_planner, plan_state, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not weightplane.enabled()
        with pytest.raises(weightplane.SharedMemoryUnavailable):
            weightplane.publish(deployed_planner.kernel_plan())
        assert campaign._publish_system_plans({"jarvis"}) is None


class TestCampaignIntegration:
    def _spec(self, trials=2):
        return [TrialSpec(condition="clean", system="jarvis", task="wooden",
                          num_trials=trials, seed=0)]

    def test_pool_shutdown_leaves_no_segments(self, tmp_path):
        run_campaign(self._spec(), jobs=2, out=tmp_path / "pool", name="shm")
        assert not _own_segments()

    def test_shm_disabled_fallback_byte_identical(self, tmp_path, monkeypatch):
        reference = run_campaign(self._spec(), jobs=1,
                                 out=tmp_path / "serial", name="fb")
        monkeypatch.setenv("REPRO_SHM", "0")
        fallback = run_campaign(self._spec(), jobs=2,
                                out=tmp_path / "fallback", name="fb")
        assert reference.csv_path.read_bytes() == fallback.csv_path.read_bytes()
        assert reference.json_path.read_bytes() == \
            fallback.json_path.read_bytes()

    def test_plan_cache_column_stamped(self, tmp_path):
        result = run_campaign(self._spec(3), jobs=1, out=tmp_path, name="prov")
        states = [record.plan_cache for record in result.records("clean")]
        assert all(state in ("miss", "hit", "shm") for state in states)
        assert states[-1] in ("hit", "shm")  # the plan survives across cells


class TestRegistryEviction:
    def test_clear_system_cache_evicts_worker_caches(self):
        campaign._WORKER_EXECUTORS["sentinel"] = object()
        campaign._SHM_MANIFESTS["sentinel"] = {}
        clear_system_cache()
        assert "sentinel" not in campaign._WORKER_EXECUTORS
        assert "sentinel" not in campaign._SHM_MANIFESTS

    def test_overwrite_registration_evicts_one_key(self):
        from repro.agents.registry import SYSTEM_FACTORIES, register_system
        campaign._WORKER_EXECUTORS.update(stale=object(), kept=object())
        try:
            register_system("stale", lambda: None)
            assert "stale" not in campaign._WORKER_EXECUTORS
            assert "kept" in campaign._WORKER_EXECUTORS
        finally:
            SYSTEM_FACTORIES.pop("stale", None)
            campaign._WORKER_EXECUTORS.clear()


class TestBatchedKernelMemo:
    def test_release_inputs_drops_stack_memo(self, deployed_planner, rng):
        contexts = [deployed_planner.kernel_context() for _ in range(2)]
        batched = BatchedKernel(contexts)
        x = rng.normal(size=(2, deployed_planner.config.dim))
        batched.qgemm("layer0.q", x, lane_rows=[1, 1])
        assert batched._qx_source is x
        assert batched._qx is not None
        batched.release_inputs()
        assert batched._qx_source is None
        assert batched._qx is None
        assert batched._qx_scale == 0.0
