"""Integration tests: the paper's qualitative claims must hold at test scale.

These run small numbers of trials, so they assert orderings and clear-cut
effects rather than exact percentages; the benchmarks in ``benchmarks/`` run
the full-size versions.
"""

import numpy as np
import pytest

from repro.core import (
    ConstantVoltagePolicy,
    CreateConfig,
    ProtectionConfig,
    REFERENCE_POLICIES,
    VoltageScalingConfig,
    default_policy,
)
from repro.eval import ber_sweep, summarize_trials
from repro.eval.resilience import component_sweep
from repro.faults import UniformErrorModel
from repro.hardware import EnergyModel, NOMINAL_VOLTAGE


class TestInsight1PlannerVsController:
    """Sec. 4.1: the controller is more error resilient than the planner."""

    def test_controller_survives_ber_that_breaks_planner(self, jarvis_executor):
        ber = 6e-4
        planner_sweep = ber_sweep(jarvis_executor, "wooden", [ber], target="planner",
                                  num_trials=8, seed=0)
        controller_sweep = ber_sweep(jarvis_executor, "wooden", [ber], target="controller",
                                     num_trials=8, seed=0)
        assert controller_sweep.success_rates()[0] > planner_sweep.success_rates()[0]

    def test_both_robust_at_low_ber(self, jarvis_executor):
        for target in ("planner", "controller"):
            sweep = ber_sweep(jarvis_executor, "wooden", [1e-6], target=target,
                              num_trials=5, seed=1)
            assert sweep.success_rates()[0] >= 0.8

    def test_average_steps_grow_before_success_collapses(self, jarvis_executor):
        sweep = ber_sweep(jarvis_executor, "wooden", [1e-6, 3e-4], target="controller",
                          num_trials=6, seed=2)
        assert sweep.average_steps()[1] > sweep.average_steps()[0]


class TestInsight2ComponentVulnerability:
    """Sec. 4.1: pre-norm components (O/Down) are more vulnerable than K in the planner."""

    def test_o_down_worse_than_k(self, jarvis_executor):
        groups = {"K": ("*.k",), "O+Down": ("*.o", "*.down")}
        results = component_sweep(jarvis_executor, "wooden", [2e-3], groups,
                                  target="planner", num_trials=8, seed=3)
        assert results["K"].success_rates()[0] >= results["O+Down"].success_rates()[0]


class TestInsight3StageAndSubtaskDependence:
    """Sec. 4.2: resilience depends on the subtask type and execution stage."""

    def test_stochastic_subtask_more_resilient_than_sequential(self, jarvis_system):
        executor = jarvis_system.executor()
        ber = 1.2e-3
        seq = ber_sweep(executor, "log", [ber], target="controller", num_trials=8, seed=4)
        sto = ber_sweep(executor, "seed", [ber], target="controller", num_trials=8, seed=4)
        assert sto.success_rates()[0] >= seq.success_rates()[0]

    def test_entropy_separates_critical_steps(self, jarvis_executor):
        result = jarvis_executor.run_trial("wooden", seed=5)
        entropies, critical, _ = result.entropy_trace.as_arrays()
        assert entropies[critical].mean() < entropies[~critical].mean()


class TestAnomalyDetectionAndClearance:
    """Sec. 5.1 / 6.3: AD recovers task quality under aggressive error rates."""

    def test_ad_recovers_planner(self, jarvis_executor):
        ber = 2e-3
        base = ber_sweep(jarvis_executor, "wooden", [ber], target="planner",
                         num_trials=8, seed=6, anomaly_detection=False)
        with_ad = ber_sweep(jarvis_executor, "wooden", [ber], target="planner",
                            num_trials=8, seed=6, anomaly_detection=True)
        assert with_ad.success_rates()[0] > base.success_rates()[0]

    def test_ad_recovers_controller(self, jarvis_executor):
        ber = 2e-3
        base = ber_sweep(jarvis_executor, "wooden", [ber], target="controller",
                         num_trials=8, seed=7, anomaly_detection=False)
        with_ad = ber_sweep(jarvis_executor, "wooden", [ber], target="controller",
                            num_trials=8, seed=7, anomaly_detection=True)
        assert with_ad.success_rates()[0] >= base.success_rates()[0] + 0.2


class TestWeightRotationEnhancedPlanning:
    """Sec. 5.2 / 6.4: WR improves planner robustness beyond AD alone."""

    def test_wr_plus_ad_beats_ad_alone_at_high_ber(self, jarvis_system, jarvis_system_rotated):
        ber = 2e-2
        plain = ber_sweep(jarvis_system.executor(), "wooden", [ber], target="planner",
                          num_trials=8, seed=8, anomaly_detection=True)
        rotated = ber_sweep(jarvis_system_rotated.executor(), "wooden", [ber], target="planner",
                            num_trials=8, seed=8, anomaly_detection=True)
        assert rotated.success_rates()[0] >= plain.success_rates()[0]

    def test_wr_does_not_hurt_clean_accuracy(self, jarvis_system_rotated):
        result = jarvis_system_rotated.executor().run_trial("wooden", seed=9)
        assert result.success


class TestAutonomyAdaptiveVoltageScaling:
    """Sec. 5.3 / 6.5: VS lowers effective voltage without hurting success."""

    def test_vs_lowers_effective_voltage_vs_safe_constant(self, jarvis_system):
        executor = jarvis_system.executor()
        policy = REFERENCE_POLICIES["C"]
        vs_protection = ProtectionConfig(
            anomaly_detection=True,
            voltage_scaling=VoltageScalingConfig(policy=policy, entropy_source="oracle"))
        constant_protection = ProtectionConfig(voltage=policy.max_voltage(),
                                               anomaly_detection=True)
        vs_trials = executor.run_trials("wooden", 6, seed=10,
                                        controller_protection=vs_protection)
        const_trials = executor.run_trials("wooden", 6, seed=10,
                                           controller_protection=constant_protection)
        vs_summary = summarize_trials(vs_trials)
        const_summary = summarize_trials(const_trials)
        assert vs_summary.success_rate >= const_summary.success_rate - 0.2
        assert vs_summary.effective_voltage < const_summary.effective_voltage

    def test_vs_with_predictor_matches_oracle_closely(self, jarvis_system):
        executor = jarvis_system.executor()
        policy = default_policy()
        summaries = {}
        for source in ("oracle", "predictor"):
            protection = ProtectionConfig(
                anomaly_detection=True,
                voltage_scaling=VoltageScalingConfig(policy=policy, entropy_source=source))
            trials = executor.run_trials("wooden", 5, seed=11,
                                         controller_protection=protection)
            summaries[source] = summarize_trials(trials)
        assert summaries["predictor"].success_rate >= summaries["oracle"].success_rate - 0.25


class TestEndToEndCreate:
    """Sec. 6.7: the full CREATE stack saves energy at iso task quality."""

    def test_full_stack_saves_energy_without_losing_success(self, jarvis_system,
                                                            jarvis_system_rotated):
        energy_model = EnergyModel()
        baseline_exec = jarvis_system.executor()
        baseline = summarize_trials(baseline_exec.run_trials("wooden", 6, seed=12))

        config = CreateConfig(ad=True, wr=True, vs_policy=default_policy(),
                              vs_entropy_source="oracle", planner_voltage=0.78)
        create_exec = jarvis_system_rotated.executor()
        create_trials = create_exec.run_trials(
            "wooden", 6, seed=12,
            planner_protection=config.planner_protection(),
            controller_protection=config.controller_protection())
        create_summary = summarize_trials(create_trials)

        assert create_summary.success_rate >= baseline.success_rate - 0.2
        assert create_summary.mean_energy_j < baseline.mean_energy_j
        savings = 1.0 - create_summary.mean_energy_j / baseline.mean_energy_j
        assert savings > 0.15

    def test_unprotected_low_voltage_fails(self, jarvis_system):
        executor = jarvis_system.executor()
        protection = ProtectionConfig(voltage=0.72)
        trials = executor.run_trials("wooden", 5, seed=13,
                                     planner_protection=protection,
                                     controller_protection=protection)
        assert summarize_trials(trials).success_rate <= 0.4
