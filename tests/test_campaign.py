"""Tests for the campaign engine: determinism, resume, run-table round trips."""

import dataclasses

import numpy as np
import pytest

from repro.core import ProtectionConfig
from repro.eval import (
    CampaignRunner,
    RunTable,
    TrialSpec,
    protection_signature,
    record_from_trial,
    run_campaign,
    summarize_records,
    summarize_trials,
    system_ref,
)
from repro.faults.models import UniformErrorModel


def _same_summary(a, b):
    """Exact TrialSummary equality, treating NaN == NaN (dataclass eq does not)."""
    for key, left in a.as_dict().items():
        right = b.as_dict()[key]
        if left != right and not (np.isnan(left) and np.isnan(right)):
            return False
    return True


def _specs(num_trials=3):
    return [
        TrialSpec(condition="clean", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0),
        TrialSpec(condition="faulty", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0,
                  controller_protection=ProtectionConfig(
                      error_model=UniformErrorModel(1e-3)),
                  params=(("ber", "1e-3"),)),
    ]


class TestTrialSpec:
    def test_seeds_enumerate_cells(self):
        spec = _specs(4)[0]
        assert list(spec.seeds()) == [0, 1, 2, 3]

    def test_key_changes_with_protection(self):
        clean, faulty = _specs()
        assert clean.key() != faulty.key()
        twin = dataclasses.replace(faulty, condition="clean")
        assert twin.key() != faulty.key()

    def test_key_ignores_num_trials(self):
        spec = _specs(3)[0]
        grown = dataclasses.replace(spec, num_trials=8)
        assert spec.key() == grown.key()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(condition="", system="jarvis", task="wooden", num_trials=1)
        with pytest.raises(ValueError):
            TrialSpec(condition="x", system="jarvis", task="wooden", num_trials=0)

    def test_protection_signature_distinguishes_models(self):
        a = protection_signature(ProtectionConfig(error_model=UniformErrorModel(1e-3)))
        b = protection_signature(ProtectionConfig(error_model=UniformErrorModel(2e-3)))
        c = protection_signature(ProtectionConfig(voltage=0.78))
        assert len({a, b, c}) == 3
        assert protection_signature(None) == "default"

    def test_system_ref_passthrough_and_objects(self, jarvis_system):
        key, overrides = system_ref("jarvis")
        assert key == "jarvis" and overrides == {}
        key, overrides = system_ref(jarvis_system)
        assert key.startswith("local/") and overrides == {key: jarvis_system}
        executor = jarvis_system.executor()
        key, overrides = system_ref(executor, hint="plain")
        assert key == "local/executor/plain" and overrides == {key: executor}


class TestCampaignDeterminism:
    def test_serial_and_parallel_tables_are_byte_identical(self, tmp_path):
        specs = _specs()
        serial = run_campaign(specs, jobs=1, out=tmp_path / "serial", name="det")
        parallel = run_campaign(specs, jobs=2, out=tmp_path / "parallel", name="det")
        assert serial.executed_trials == parallel.executed_trials == 6
        assert serial.csv_path.read_bytes() == parallel.csv_path.read_bytes()
        assert serial.json_path.read_bytes() == parallel.json_path.read_bytes()

    def test_in_process_system_matches_registry_rebuild(self, jarvis_system, tmp_path):
        """A live system object and the registry factory produce the same trials."""
        registry = run_campaign(_specs(2), jobs=1, out=tmp_path, name="registry")
        key, overrides = system_ref(jarvis_system)
        local_specs = [dataclasses.replace(spec, system=key) for spec in _specs(2)]
        local = run_campaign(local_specs, systems=overrides)
        for spec, local_spec in zip(_specs(2), local_specs):
            reg_rows = registry.records(spec.condition)
            local_rows = local.records(local_spec.condition)
            for a, b in zip(reg_rows, local_rows):
                assert (a.success, a.steps, a.energy_j, a.controller_macs) == \
                    (b.success, b.steps, b.energy_j, b.controller_macs)

    def test_parallel_requires_registry_keys(self, jarvis_system):
        key, overrides = system_ref(jarvis_system)
        spec = TrialSpec(condition="clean", system=key, task="wooden", num_trials=1)
        with pytest.raises(ValueError, match="registry system keys"):
            run_campaign([spec], jobs=2, systems=overrides)


class TestResume:
    def test_rerun_executes_zero_trials(self, tmp_path):
        specs = _specs()
        first = run_campaign(specs, out=tmp_path, name="resume")
        assert first.executed_trials == 6
        second = run_campaign(specs, out=tmp_path, name="resume")
        assert second.executed_trials == 0
        assert first.csv_path.read_bytes() == second.csv_path.read_bytes()

    def test_growing_trials_only_runs_new_cells(self, tmp_path):
        run_campaign(_specs(3), out=tmp_path, name="grow")
        grown = run_campaign(_specs(5), out=tmp_path, name="grow")
        assert grown.executed_trials == 4  # two specs x two new seeds

    def test_changed_protection_invalidates_cells(self, tmp_path):
        specs = _specs(2)
        run_campaign(specs, out=tmp_path, name="invalidate")
        changed = [specs[0],
                   dataclasses.replace(specs[1], controller_protection=ProtectionConfig(
                       error_model=UniformErrorModel(5e-3)))]
        rerun = run_campaign(changed, out=tmp_path, name="invalidate")
        assert rerun.executed_trials == 2  # only the changed condition re-runs

    def test_resume_summary_matches_fresh_summary(self, tmp_path):
        specs = _specs(2)
        fresh = run_campaign(specs, out=tmp_path, name="summary")
        resumed = run_campaign(specs, out=tmp_path, name="summary")
        for spec in specs:
            assert _same_summary(fresh.summary(spec.condition),
                                  resumed.summary(spec.condition))


class TestRunTableRoundTrip:
    def test_summaries_survive_csv_round_trip_bit_for_bit(self, jarvis_executor, tmp_path):
        protection = ProtectionConfig(error_model=UniformErrorModel(5e-4))
        trials = jarvis_executor.run_trials("wooden", 4, seed=0,
                                            controller_protection=protection)
        records = [record_from_trial(trial, spec_key="k", condition="c",
                                     system="jarvis", task="wooden",
                                     seed=index, trial_index=index)
                   for index, trial in enumerate(trials)]
        table = RunTable(records)
        table.write_csv(tmp_path / "table.csv")
        reread = RunTable.read_csv(tmp_path / "table.csv")
        assert len(reread) == len(table)

        direct = summarize_trials(trials)
        from_memory = summarize_records(records)
        from_disk = summarize_records(list(reread))
        assert _same_summary(from_memory, direct)
        assert _same_summary(from_disk, direct)  # exact float equality, not approx

    def test_json_round_trip(self, jarvis_executor, tmp_path):
        trials = jarvis_executor.run_trials("wooden", 2, seed=7)
        records = [record_from_trial(trial, spec_key="k", condition="c",
                                     system="jarvis", task="wooden",
                                     seed=7 + index, trial_index=index)
                   for index, trial in enumerate(trials)]
        table = RunTable(records)
        table.write_json(tmp_path / "table.json")
        reread = RunTable.read_json(tmp_path / "table.json")
        assert _same_summary(summarize_records(list(reread)), summarize_records(records))

    def test_macs_round_trip_exactly(self, jarvis_executor, tmp_path):
        trial = jarvis_executor.run_trial("wooden", seed=3)
        record = record_from_trial(trial, spec_key="k", condition="c", system="jarvis",
                                   task="wooden", seed=3, trial_index=0)
        table = RunTable([record])
        table.write_csv(tmp_path / "macs.csv")
        row = next(iter(RunTable.read_csv(tmp_path / "macs.csv")))
        assert row.macs_by_voltage() == trial.macs_by_voltage()

    def test_duplicate_cells_are_ignored(self, jarvis_executor):
        trial = jarvis_executor.run_trial("wooden", seed=0)
        record = record_from_trial(trial, spec_key="k", condition="c", system="jarvis",
                                   task="wooden", seed=0, trial_index=0)
        table = RunTable([record, record])
        assert len(table) == 1
        assert table.has("k", 0) and not table.has("k", 1)


class TestCampaignResults:
    def test_summary_matches_direct_run(self, jarvis_executor):
        """Campaign summaries equal the legacy serial run_trials + summarize path."""
        protection = ProtectionConfig(error_model=UniformErrorModel(1e-3))
        key, overrides = system_ref(jarvis_executor)
        spec = TrialSpec(condition="faulty", system=key, task="wooden", num_trials=3,
                         seed=0, controller_protection=protection)
        campaign = run_campaign([spec], systems=overrides)
        trials = jarvis_executor.run_trials("wooden", 3, seed=0,
                                            controller_protection=protection)
        assert _same_summary(campaign.summary("faulty"), summarize_trials(trials))

    def test_records_ordered_by_trial_index(self, tmp_path):
        result = run_campaign(_specs(3), out=tmp_path, name="order")
        records = result.records("clean")
        assert [r.trial_index for r in records] == [0, 1, 2]
        assert [r.seed for r in records] == [0, 1, 2]

    def test_duplicate_conditions_rejected(self):
        spec = TrialSpec(condition="dup", system="jarvis", task="wooden", num_trials=1)
        with pytest.raises(ValueError, match="unique"):
            CampaignRunner().run([spec, spec])

    def test_unknown_condition_raises(self):
        result = run_campaign(_specs(1))
        with pytest.raises(KeyError):
            result.summary("nope")


class TestExperimentsThroughCampaigns:
    def test_ber_sweep_serial_vs_parallel(self, tmp_path):
        from repro.eval import ber_sweep

        serial = ber_sweep("jarvis", "wooden", [1e-5, 1e-2], num_trials=3,
                           seed=0, jobs=1, out=tmp_path / "s")
        parallel = ber_sweep("jarvis", "wooden", [1e-5, 1e-2], num_trials=3,
                             seed=0, jobs=2, out=tmp_path / "p")
        np.testing.assert_array_equal(serial.success_rates(), parallel.success_rates())
        serial_csv = next((tmp_path / "s").glob("*.csv"))
        parallel_csv = next((tmp_path / "p").glob("*.csv"))
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_repetition_study_resumes(self, tmp_path):
        from repro.eval.experiments import repetition_study

        first = repetition_study("jarvis", "wooden", 1e-5, repetition_counts=[2, 4],
                                 seed=0, out=tmp_path)
        again = repetition_study("jarvis", "wooden", 1e-5, repetition_counts=[2, 4],
                                 seed=0, out=tmp_path)
        assert first == again
        assert len(RunTable.read_csv(next(tmp_path.glob("*.csv")))) == 4
