"""Tests for the campaign engine: determinism, resume, streaming, batching,
profiling, and run-table round trips."""

import dataclasses

import numpy as np
import pytest

from repro.agents.executor import MissionExecutor
from repro.core import ProtectionConfig
from repro.eval import (
    CampaignRunner,
    RunTable,
    TrialSpec,
    collect_results,
    protection_signature,
    record_from_trial,
    run_campaign,
    summarize_records,
    summarize_trials,
    system_ref,
)
from repro.faults.models import UniformErrorModel


def _same_summary(a, b):
    """Exact TrialSummary equality, treating NaN == NaN (dataclass eq does not)."""
    for key, left in a.as_dict().items():
        right = b.as_dict()[key]
        if left != right and not (np.isnan(left) and np.isnan(right)):
            return False
    return True


def _specs(num_trials=3):
    return [
        TrialSpec(condition="clean", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0),
        TrialSpec(condition="faulty", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0,
                  controller_protection=ProtectionConfig(
                      error_model=UniformErrorModel(1e-3)),
                  params=(("ber", "1e-3"),)),
    ]


class TestTrialSpec:
    def test_seeds_enumerate_cells(self):
        spec = _specs(4)[0]
        assert list(spec.seeds()) == [0, 1, 2, 3]

    def test_key_changes_with_protection(self):
        clean, faulty = _specs()
        assert clean.key() != faulty.key()
        twin = dataclasses.replace(faulty, condition="clean")
        assert twin.key() != faulty.key()

    def test_key_ignores_num_trials(self):
        spec = _specs(3)[0]
        grown = dataclasses.replace(spec, num_trials=8)
        assert spec.key() == grown.key()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(condition="", system="jarvis", task="wooden", num_trials=1)
        with pytest.raises(ValueError):
            TrialSpec(condition="x", system="jarvis", task="wooden", num_trials=0)

    def test_protection_signature_distinguishes_models(self):
        a = protection_signature(ProtectionConfig(error_model=UniformErrorModel(1e-3)))
        b = protection_signature(ProtectionConfig(error_model=UniformErrorModel(2e-3)))
        c = protection_signature(ProtectionConfig(voltage=0.78))
        assert len({a, b, c}) == 3
        assert protection_signature(None) == "default"

    def test_system_ref_passthrough_and_objects(self, jarvis_system):
        key, overrides = system_ref("jarvis")
        assert key == "jarvis" and overrides == {}
        key, overrides = system_ref(jarvis_system)
        assert key.startswith("local/") and overrides == {key: jarvis_system}
        executor = jarvis_system.executor()
        key, overrides = system_ref(executor, hint="plain")
        assert key == "local/executor/plain" and overrides == {key: executor}


class TestCampaignDeterminism:
    def test_serial_and_parallel_tables_are_byte_identical(self, tmp_path):
        specs = _specs()
        serial = run_campaign(specs, jobs=1, out=tmp_path / "serial", name="det")
        parallel = run_campaign(specs, jobs=2, out=tmp_path / "parallel", name="det")
        assert serial.executed_trials == parallel.executed_trials == 6
        assert serial.csv_path.read_bytes() == parallel.csv_path.read_bytes()
        assert serial.json_path.read_bytes() == parallel.json_path.read_bytes()

    def test_in_process_system_matches_registry_rebuild(self, jarvis_system, tmp_path):
        """A live system object and the registry factory produce the same trials."""
        registry = run_campaign(_specs(2), jobs=1, out=tmp_path, name="registry")
        key, overrides = system_ref(jarvis_system)
        local_specs = [dataclasses.replace(spec, system=key) for spec in _specs(2)]
        local = run_campaign(local_specs, systems=overrides)
        for spec, local_spec in zip(_specs(2), local_specs):
            reg_rows = registry.records(spec.condition)
            local_rows = local.records(local_spec.condition)
            for a, b in zip(reg_rows, local_rows):
                assert (a.success, a.steps, a.energy_j, a.controller_macs) == \
                    (b.success, b.steps, b.energy_j, b.controller_macs)

    def test_parallel_requires_registry_keys(self, jarvis_system):
        key, overrides = system_ref(jarvis_system)
        spec = TrialSpec(condition="clean", system=key, task="wooden", num_trials=1)
        with pytest.raises(ValueError, match="registry system keys"):
            run_campaign([spec], jobs=2, systems=overrides)


class TestResume:
    def test_rerun_executes_zero_trials(self, tmp_path):
        specs = _specs()
        first = run_campaign(specs, out=tmp_path, name="resume")
        assert first.executed_trials == 6
        second = run_campaign(specs, out=tmp_path, name="resume")
        assert second.executed_trials == 0
        assert first.csv_path.read_bytes() == second.csv_path.read_bytes()

    def test_growing_trials_only_runs_new_cells(self, tmp_path):
        run_campaign(_specs(3), out=tmp_path, name="grow")
        grown = run_campaign(_specs(5), out=tmp_path, name="grow")
        assert grown.executed_trials == 4  # two specs x two new seeds

    def test_changed_protection_invalidates_cells(self, tmp_path):
        specs = _specs(2)
        run_campaign(specs, out=tmp_path, name="invalidate")
        changed = [specs[0],
                   dataclasses.replace(specs[1], controller_protection=ProtectionConfig(
                       error_model=UniformErrorModel(5e-3)))]
        rerun = run_campaign(changed, out=tmp_path, name="invalidate")
        assert rerun.executed_trials == 2  # only the changed condition re-runs

    def test_resume_summary_matches_fresh_summary(self, tmp_path):
        specs = _specs(2)
        fresh = run_campaign(specs, out=tmp_path, name="summary")
        resumed = run_campaign(specs, out=tmp_path, name="summary")
        for spec in specs:
            assert _same_summary(fresh.summary(spec.condition),
                                  resumed.summary(spec.condition))


class TestRunTableRoundTrip:
    def test_summaries_survive_csv_round_trip_bit_for_bit(self, jarvis_executor, tmp_path):
        protection = ProtectionConfig(error_model=UniformErrorModel(5e-4))
        trials = jarvis_executor.run_trials("wooden", 4, seed=0,
                                            controller_protection=protection)
        records = [record_from_trial(trial, spec_key="k", condition="c",
                                     system="jarvis", task="wooden",
                                     seed=index, trial_index=index)
                   for index, trial in enumerate(trials)]
        table = RunTable(records)
        table.write_csv(tmp_path / "table.csv")
        reread = RunTable.read_csv(tmp_path / "table.csv")
        assert len(reread) == len(table)

        direct = summarize_trials(trials)
        from_memory = summarize_records(records)
        from_disk = summarize_records(list(reread))
        assert _same_summary(from_memory, direct)
        assert _same_summary(from_disk, direct)  # exact float equality, not approx

    def test_json_round_trip(self, jarvis_executor, tmp_path):
        trials = jarvis_executor.run_trials("wooden", 2, seed=7)
        records = [record_from_trial(trial, spec_key="k", condition="c",
                                     system="jarvis", task="wooden",
                                     seed=7 + index, trial_index=index)
                   for index, trial in enumerate(trials)]
        table = RunTable(records)
        table.write_json(tmp_path / "table.json")
        reread = RunTable.read_json(tmp_path / "table.json")
        assert _same_summary(summarize_records(list(reread)), summarize_records(records))

    def test_macs_round_trip_exactly(self, jarvis_executor, tmp_path):
        trial = jarvis_executor.run_trial("wooden", seed=3)
        record = record_from_trial(trial, spec_key="k", condition="c", system="jarvis",
                                   task="wooden", seed=3, trial_index=0)
        table = RunTable([record])
        table.write_csv(tmp_path / "macs.csv")
        row = next(iter(RunTable.read_csv(tmp_path / "macs.csv")))
        assert row.macs_by_voltage() == trial.macs_by_voltage()

    def test_duplicate_cells_are_ignored(self, jarvis_executor):
        trial = jarvis_executor.run_trial("wooden", seed=0)
        record = record_from_trial(trial, spec_key="k", condition="c", system="jarvis",
                                   task="wooden", seed=0, trial_index=0)
        table = RunTable([record, record])
        assert len(table) == 1
        assert table.has("k", 0) and not table.has("k", 1)


class TestCampaignResults:
    def test_summary_matches_direct_run(self, jarvis_executor):
        """Campaign summaries equal the legacy serial run_trials + summarize path."""
        protection = ProtectionConfig(error_model=UniformErrorModel(1e-3))
        key, overrides = system_ref(jarvis_executor)
        spec = TrialSpec(condition="faulty", system=key, task="wooden", num_trials=3,
                         seed=0, controller_protection=protection)
        campaign = run_campaign([spec], systems=overrides)
        trials = jarvis_executor.run_trials("wooden", 3, seed=0,
                                            controller_protection=protection)
        assert _same_summary(campaign.summary("faulty"), summarize_trials(trials))

    def test_records_ordered_by_trial_index(self, tmp_path):
        result = run_campaign(_specs(3), out=tmp_path, name="order")
        records = result.records("clean")
        assert [r.trial_index for r in records] == [0, 1, 2]
        assert [r.seed for r in records] == [0, 1, 2]

    def test_duplicate_conditions_rejected(self):
        spec = TrialSpec(condition="dup", system="jarvis", task="wooden", num_trials=1)
        with pytest.raises(ValueError, match="unique"):
            CampaignRunner().run([spec, spec])

    def test_unknown_condition_raises(self):
        result = run_campaign(_specs(1))
        with pytest.raises(KeyError):
            result.summary("nope")


class _FlakyExecutor(MissionExecutor):
    """Delegating executor that crashes on chosen seeds (simulates a kill)."""

    def __init__(self, inner, fail_seeds):
        self._inner = inner
        self._fail_seeds = set(fail_seeds)

    def run_trial(self, task_name, seed=0, planner_protection=None,
                  controller_protection=None):
        if seed in self._fail_seeds:
            raise RuntimeError("injected crash")
        return self._inner.run_trial(task_name, seed=seed,
                                     planner_protection=planner_protection,
                                     controller_protection=controller_protection)


class TestStreaming:
    def test_crash_leaves_streamed_rows_resume_runs_only_missing(
            self, jarvis_executor, tmp_path):
        """Completed rows survive a mid-campaign crash; resume finishes the rest."""
        flaky = _FlakyExecutor(jarvis_executor, fail_seeds={2})
        key, overrides = system_ref(flaky, hint="flaky")
        spec = TrialSpec(condition="clean", system=key, task="wooden", num_trials=4)
        with pytest.raises(RuntimeError, match="injected crash"):
            run_campaign([spec], systems=overrides, out=tmp_path, name="crash")

        csv_path = tmp_path / "crash.csv"
        streamed = RunTable.read_csv(csv_path, strict=False)
        assert len(streamed) == 2  # seeds 0 and 1 were flushed before the crash
        assert streamed.has(spec.key(), 0) and streamed.has(spec.key(), 1)

        resumed = run_campaign([spec], systems={key: jarvis_executor},
                               out=tmp_path, name="crash")
        assert resumed.executed_trials == 2  # only seeds 2 and 3
        assert len(resumed.table) == 4

        fresh = run_campaign([spec], systems={key: jarvis_executor},
                             out=tmp_path / "fresh", name="crash")
        assert fresh.csv_path.read_bytes() == csv_path.read_bytes()

    def test_truncated_final_row_is_dropped_and_reexecuted(self, tmp_path):
        specs = _specs(2)
        run_campaign(specs, out=tmp_path, name="torn")
        csv_path = tmp_path / "torn.csv"
        lines = csv_path.read_text().splitlines(keepends=True)
        csv_path.write_text("".join(lines[:-1]) + lines[-1][:25])  # torn write

        with pytest.raises(ValueError, match="malformed"):
            RunTable.read_csv(csv_path)
        assert len(RunTable.read_csv(csv_path, strict=False)) == 3

        rerun = run_campaign(specs, out=tmp_path, name="torn")
        assert rerun.executed_trials == 1  # just the torn cell
        assert len(rerun.table) == 4
        # the completion rewrite leaves a strictly-parseable canonical file
        assert len(RunTable.read_csv(csv_path)) == 4

    def test_tear_inside_quoted_params_field_is_rejected(self, tmp_path):
        """A tear inside the final quoted JSON field keeps the column count
        right (csv tolerates EOF in quotes); the JSON validation must still
        drop the row so the cell re-executes instead of persisting garbage."""
        specs = _specs(2)
        run_campaign(specs, out=tmp_path, name="tornq")
        csv_path = tmp_path / "tornq.csv"
        text = csv_path.read_text()
        assert text.endswith('"}"\n')  # last row ends inside its quoted params
        csv_path.write_text(text[:-4])  # tear mid-JSON, inside the quotes

        lenient = RunTable.read_csv(csv_path, strict=False)
        assert len(lenient) == 3
        for record in lenient:
            record.param_dict()  # every surviving row has parseable JSON

        rerun = run_campaign(specs, out=tmp_path, name="tornq")
        assert rerun.executed_trials == 1
        assert len(RunTable.read_csv(csv_path)) == 4

    def test_resume_false_clears_stale_rows_before_streaming(
            self, jarvis_executor, tmp_path):
        """resume=False must not append fresh rows after stale ones: a crash
        mid-re-execution would let the stale rows win on the next resume."""
        specs = _specs(2)
        run_campaign(specs, out=tmp_path, name="force")  # 4 completed rows

        flaky = _FlakyExecutor(jarvis_executor, fail_seeds={1})
        with pytest.raises(RuntimeError, match="injected crash"):
            run_campaign(specs, out=tmp_path, name="force", resume=False,
                         systems={"jarvis": flaky})
        streamed = RunTable.read_csv(tmp_path / "force.csv", strict=False)
        assert len(streamed) == 1  # stale table cleared; only the fresh row

        resumed = run_campaign(specs, out=tmp_path, name="force")
        assert resumed.executed_trials == 3
        assert len(resumed.table) == 4

    def test_writer_truncates_torn_tail_before_appending(self, jarvis_executor,
                                                         tmp_path):
        from repro.eval import RunTableWriter

        records = [record_from_trial(jarvis_executor.run_trial("wooden", seed=seed),
                                     spec_key="k", condition="c", system="jarvis",
                                     task="wooden", seed=seed, trial_index=seed)
                   for seed in range(3)]
        path = tmp_path / "torn.csv"
        with RunTableWriter(path) as writer:
            writer.write(records[0])
            writer.write(records[1])
        path.write_bytes(path.read_bytes() + b"abc,def")  # torn row, no newline

        with RunTableWriter(path) as writer:
            writer.write(records[2])
        table = RunTable.read_csv(path)  # strict: no merged/garbled rows
        assert len(table) == 3
        assert [r.seed for r in table] == [0, 1, 2]

    def test_file_grows_while_campaign_runs(self, jarvis_executor, tmp_path, monkeypatch):
        """Rows are on disk before later cells execute, not only at the end."""
        import repro.eval.campaign as campaign_module

        csv_path = tmp_path / "grow.csv"
        sizes = []
        original = campaign_module._run_cell

        def spying_run_cell(cell, executor):
            sizes.append(csv_path.stat().st_size if csv_path.exists() else 0)
            return original(cell, executor)

        monkeypatch.setattr(campaign_module, "_run_cell", spying_run_cell)
        key, overrides = system_ref(jarvis_executor)
        spec = TrialSpec(condition="clean", system=key, task="wooden", num_trials=3)
        # vector=False pins the scalar path: the vectorized path executes the
        # whole same-spec group as one unit, so rows land in a burst instead
        # of one by one (and _run_cell is never called).
        run_campaign([spec], systems=overrides, out=tmp_path, name="grow",
                     vector=False)
        assert len(sizes) == 3
        assert sizes[1] > sizes[0] and sizes[2] > sizes[1]


class TestBatching:
    def test_batch_sizes_produce_byte_identical_tables(self, tmp_path):
        specs = _specs(3)
        serial = run_campaign(specs, jobs=1, out=tmp_path / "s", name="batch")
        b1 = run_campaign(specs, jobs=2, batch=1, out=tmp_path / "b1", name="batch")
        b8 = run_campaign(specs, jobs=2, batch=8, out=tmp_path / "b8", name="batch")
        assert serial.csv_path.read_bytes() == b1.csv_path.read_bytes()
        assert b1.csv_path.read_bytes() == b8.csv_path.read_bytes()
        assert b1.json_path.read_bytes() == b8.json_path.read_bytes()

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            CampaignRunner(batch=0)

    def test_auto_batch_heuristic(self):
        runner = CampaignRunner(jobs=4)
        assert runner._batch_size(3) == 1        # fewer cells than workers
        assert runner._batch_size(160) == 10     # ~4 batches per worker
        assert runner._batch_size(10_000) == 32  # capped for streaming cadence
        assert CampaignRunner(jobs=4, batch=7)._batch_size(10_000) == 7


class TestProfile:
    def test_profile_columns_round_trip_csv_and_json(self, jarvis_executor, tmp_path):
        trial = jarvis_executor.run_trial("wooden", seed=0)
        record = dataclasses.replace(
            record_from_trial(trial, spec_key="k", condition="c", system="jarvis",
                              task="wooden", seed=0, trial_index=0),
            wall_time_s=1.2345678901234567, worker_id="ForkProcess-3")
        table = RunTable([record])

        table.write_csv(tmp_path / "p.csv", profile=True)
        row = next(iter(RunTable.read_csv(tmp_path / "p.csv")))
        assert row.wall_time_s == record.wall_time_s  # repr-exact float
        assert row.worker_id == "ForkProcess-3" and row.profiled()

        table.write_json(tmp_path / "p.json", profile=True)
        jrow = next(iter(RunTable.read_json(tmp_path / "p.json")))
        assert jrow.wall_time_s == record.wall_time_s
        assert jrow.worker_id == "ForkProcess-3"

    def test_canonical_files_exclude_profile_columns(self, tmp_path):
        run_campaign(_specs(1), out=tmp_path, name="canon")
        header = (tmp_path / "canon.csv").read_text().splitlines()[0]
        assert "wall_time_s" not in header and "worker_id" not in header
        row = next(iter(RunTable.read_csv(tmp_path / "canon.csv")))
        assert not row.profiled() and row.worker_id == ""

        sidecar_header = (tmp_path / "profiles" / "canon.csv"
                          ).read_text().splitlines()[0]
        assert "wall_time_s" in sidecar_header and "worker_id" in sidecar_header
        sidecar_row = next(iter(RunTable.read_csv(tmp_path / "profiles" / "canon.csv")))
        assert sidecar_row.profiled() and sidecar_row.worker_id

    def test_profile_summary_and_cached_split(self, tmp_path):
        first = run_campaign(_specs(2), out=tmp_path, name="prof")
        profile = first.profile()
        assert profile.executed_trials == 4 and profile.cached_trials == 0
        assert profile.total_wall_time_s > 0
        assert profile.max_cell_wall_time_s <= profile.total_wall_time_s
        assert set(profile.per_condition) == {"clean", "faulty"}
        assert sum(b.cells for b in profile.per_worker.values()) == 4
        assert "cells" in profile.format()

        resumed = run_campaign(_specs(2), out=tmp_path, name="prof")
        assert resumed.profile().executed_trials == 0
        assert resumed.profile().cached_trials == 4


class TestCollectResults:
    def test_collects_campaigns_run_inside_the_block(self):
        with collect_results() as results:
            run_campaign(_specs(1))
            run_campaign(_specs(1))
        assert len(results) == 2
        assert sum(r.executed_trials for r in results) == 4
        with collect_results() as after:
            pass
        assert after == []

    def test_nested_blocks_detach_the_right_sink(self):
        with collect_results() as outer:
            with collect_results() as inner:
                pass  # exits while both sinks are empty (and equal)
            run_campaign(_specs(1))
        assert len(outer) == 1  # the outer sink kept collecting
        assert inner == []


class TestExperimentsThroughCampaigns:
    def test_ber_sweep_serial_vs_parallel(self, tmp_path):
        from repro.eval import ber_sweep

        serial = ber_sweep("jarvis", "wooden", [1e-5, 1e-2], num_trials=3,
                           seed=0, jobs=1, out=tmp_path / "s")
        parallel = ber_sweep("jarvis", "wooden", [1e-5, 1e-2], num_trials=3,
                             seed=0, jobs=2, out=tmp_path / "p")
        np.testing.assert_array_equal(serial.success_rates(), parallel.success_rates())
        serial_csv = next((tmp_path / "s").glob("*.csv"))
        parallel_csv = next((tmp_path / "p").glob("*.csv"))
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_repetition_study_resumes(self, tmp_path):
        from repro.eval.experiments import repetition_study

        first = repetition_study("jarvis", "wooden", 1e-5, repetition_counts=[2, 4],
                                 seed=0, out=tmp_path)
        again = repetition_study("jarvis", "wooden", 1e-5, repetition_counts=[2, 4],
                                 seed=0, out=tmp_path)
        assert first == again
        assert len(RunTable.read_csv(next(tmp_path.glob("*.csv")))) == 4
