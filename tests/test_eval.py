"""Tests for metrics, resilience sweeps, experiment runners and reporting."""

import numpy as np
import pytest

from repro.agents import TrialResult
from repro.core import CreateConfig, default_policy
from repro.eval import (
    SweepResult,
    banner,
    ber_sweep,
    confidence_interval,
    energy_savings_percent,
    format_series,
    format_sweep,
    format_table,
    summarize_trials,
)
from repro.eval import experiments
from repro.eval.resilience import SweepPoint, stage_entropy_profile
from repro.hardware import NOMINAL_VOLTAGE


def _fake_trial(success: bool, steps: int, macs: float = 1e6,
                voltage: float = NOMINAL_VOLTAGE) -> TrialResult:
    result = TrialResult(task="wooden", success=success, steps=steps,
                         planner_invocations=1, controller_steps=steps)
    result.controller_macs_by_voltage = {voltage: macs}
    return result


class TestMetrics:
    def test_summary_rates_and_steps(self):
        trials = [_fake_trial(True, 100), _fake_trial(True, 120), _fake_trial(False, 900)]
        summary = summarize_trials(trials)
        assert summary.success_rate == pytest.approx(2 / 3)
        assert summary.average_steps_successful == pytest.approx(110)
        assert summary.average_steps == pytest.approx((100 + 120 + 900) / 3)
        assert summary.num_trials == 3
        assert summary.mean_energy_j > 0

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_trials([])

    def test_effective_voltage_tracks_low_voltage_trials(self):
        low = [_fake_trial(True, 50, voltage=0.7)]
        summary = summarize_trials(low)
        assert summary.effective_voltage == pytest.approx(0.7)

    def test_confidence_interval_shrinks_with_trials(self):
        wide = confidence_interval(50, 100)
        narrow = confidence_interval(500, 1000)
        assert narrow < wide
        with pytest.raises(ValueError):
            confidence_interval(1, 0)

    def test_energy_savings_percent(self):
        assert energy_savings_percent(10.0, 6.0) == pytest.approx(40.0)
        with pytest.raises(ValueError):
            energy_savings_percent(0.0, 1.0)

    def test_summary_as_dict_keys(self):
        summary = summarize_trials([_fake_trial(True, 10)])
        assert "success_rate" in summary.as_dict()


class TestSweepResult:
    def _sweep(self):
        points = [
            SweepPoint(1e-5, summarize_trials([_fake_trial(True, 50)] * 4)),
            SweepPoint(1e-4, summarize_trials([_fake_trial(True, 60)] * 3 + [_fake_trial(False, 900)])),
            SweepPoint(1e-3, summarize_trials([_fake_trial(False, 900)] * 4)),
        ]
        return SweepResult(label="test", task="wooden", points=points)

    def test_arrays(self):
        sweep = self._sweep()
        np.testing.assert_allclose(sweep.bers(), [1e-5, 1e-4, 1e-3])
        assert sweep.success_rates()[0] == 1.0
        assert sweep.average_steps()[-1] == 900

    def test_failure_threshold(self):
        sweep = self._sweep()
        assert sweep.failure_threshold(0.5) == pytest.approx(1e-3)
        assert sweep.failure_threshold(0.9) == pytest.approx(1e-4)


class TestLiveSweeps:
    def test_ber_sweep_controller_degrades_monotonically(self, jarvis_executor):
        sweep = ber_sweep(jarvis_executor, "wooden", [1e-5, 1e-2], target="controller",
                          num_trials=4, seed=0)
        rates = sweep.success_rates()
        assert rates[0] >= rates[-1]
        assert rates[0] >= 0.75
        assert rates[-1] <= 0.25

    def test_ber_sweep_invalid_target(self, jarvis_executor):
        with pytest.raises(ValueError):
            ber_sweep(jarvis_executor, "wooden", [1e-4], target="nobody")

    def test_stage_entropy_profile_separates(self, jarvis_system):
        profile = stage_entropy_profile(jarvis_system, "wooden", num_trials=2, seed=1)
        assert profile["separation"] > 0.3


class TestExperimentRunners:
    def test_motivation_curves_shapes(self):
        curves = experiments.motivation_curves()
        assert curves["voltages"].shape == curves["mean_ber"].shape
        assert np.all(np.diff(curves["mean_ber"]) <= 1e-12)  # BER falls as voltage rises
        assert np.all(np.diff(curves["dynamic_energy_scale"]) > 0)

    def test_timing_error_table(self):
        table = experiments.timing_error_table([0.8, 0.75])
        assert set(table) == {0.8, 0.75}
        assert np.all(table[0.75] >= table[0.8])

    def test_gemm_output_profile(self, jarvis_system):
        profile = experiments.gemm_output_profile(jarvis_system)
        assert profile["planner_max_bound"] > profile["controller_max_bound"] * 0.0
        assert profile["planner_median_bound"] > 0

    def test_rotation_study_tightens_bounds(self, jarvis_system, jarvis_system_rotated):
        study = experiments.rotation_study(jarvis_system, jarvis_system_rotated)
        assert study["outlier_ratio_after"] < study["outlier_ratio_before"]
        assert study["bound_tightening"] > 1.0

    def test_hardware_report_keys(self):
        report = experiments.hardware_report()
        assert report["peak_tops"] > 100
        assert set(report["blocks"]) == {"LDO", "AD Unit", "PE Array", "SRAM"}
        assert report["ldo_spec"]["step_v"] == pytest.approx(0.01)

    def test_model_table_contains_all_models(self):
        table = experiments.model_table()
        assert len(table) == 7
        assert table["jarvis_planner"]["modelled_params_millions"] == pytest.approx(
            table["jarvis_planner"]["paper_params_millions"], rel=0.25)

    def test_chip_energy_breakdown_fractions(self):
        breakdown = experiments.chip_energy_breakdown()
        for entry in breakdown.values():
            assert 0 < entry["compute_fraction"] < 1
            assert entry["chip_level_savings_percent"] < entry["compute_savings_percent"]
            assert entry["battery_life_extension_percent"] > 0

    def test_repetition_study_converges(self, jarvis_executor):
        rates = experiments.repetition_study(jarvis_executor, "wooden", 1e-5,
                                             repetition_counts=[4, 8], seed=0)
        assert set(rates) == {4, 8}
        assert all(0 <= r <= 1 for r in rates.values())

    def test_interval_sweep_returns_all_intervals(self, jarvis_system):
        result = experiments.interval_sweep(jarvis_system, "wooden", intervals=[1, 10],
                                            num_trials=2, seed=0)
        assert set(result) == {1, 10}

    def test_minimum_voltage_search_finds_voltage(self, jarvis_system_rotated):
        config = CreateConfig(ad=True, wr=True, vs_policy=None)
        voltage, summaries = experiments.minimum_voltage_search(
            jarvis_system_rotated, "wooden", config, voltages=[0.84, 0.80],
            num_trials=2, seed=0, success_threshold=0.5)
        assert voltage in (0.84, 0.80, NOMINAL_VOLTAGE)
        assert summaries


class TestReporting:
    def test_banner(self):
        assert "Fig. 5" in banner("Fig. 5")

    def test_format_table_alignment(self):
        text = format_table(["a", "metric"], [[1, 0.5], [2, 1234567.0]], title="T")
        assert "T" in text and "metric" in text
        assert "1.235e+06" in text

    def test_format_series(self):
        text = format_series("x", "y", [1, 2], [0.1, 0.2])
        assert text.count("\n") >= 3

    def test_format_sweep(self):
        points = [SweepPoint(1e-4, summarize_trials([_fake_trial(True, 10)]))]
        sweeps = {"label": SweepResult("label", "wooden", points)}
        text = format_sweep(sweeps, title="sweep")
        assert "label" in text and "1.0e-04" in text

    def test_format_sweep_empty(self):
        assert format_sweep({}, title="empty") == "empty"
