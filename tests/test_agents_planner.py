"""Tests for the planner surrogate: vocabulary, training, deployment, rotation."""

import numpy as np
import pytest

from repro.agents import (
    DeployedPlanner,
    PLANNER_CONFIGS,
    PlannerConfig,
    PlannerNetwork,
    build_planner_dataset,
    build_vocabulary,
    extract_planner_weights,
    get_planner_network,
    plan_accuracy,
)
from repro.core import hadamard_matrix, rotation_matrix_for_dim
from repro.core.rotation import outlier_ratio
from repro.env import MINECRAFT_SUITE
from repro.nn import no_grad
from repro.quant import GemmHooks
from repro.faults import ErrorInjector, UniformErrorModel


class TestVocabulary:
    def test_vocabulary_covers_all_tasks_and_subtasks(self):
        vocab = build_vocabulary()
        assert "wooden" in vocab.task_tokens and "wine" in vocab.task_tokens
        assert "mine_logs" in vocab.subtask_tokens and "grasp_object" in vocab.subtask_tokens
        tokens = ([vocab.pad, vocab.bos, vocab.eos, vocab.sep]
                  + list(vocab.task_tokens.values())
                  + list(vocab.progress_tokens.values())
                  + list(vocab.subtask_tokens.values()))
        assert len(set(tokens)) == vocab.size

    def test_prompt_encoding(self):
        vocab = build_vocabulary()
        prompt = vocab.encode_prompt("wooden", 2)
        assert prompt[0] == vocab.bos and prompt[-1] == vocab.sep
        assert len(prompt) == 4

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            build_vocabulary().encode_prompt("unknown-task", 0)

    def test_plan_roundtrip(self):
        vocab = build_vocabulary()
        plan = ["mine_logs", "craft_planks"]
        decoded = vocab.decode_plan(vocab.encode_plan(plan))
        assert decoded == plan

    def test_decode_stops_at_eos_and_marks_invalid(self):
        vocab = build_vocabulary()
        tokens = [vocab.subtask_tokens["mine_logs"], 0, vocab.eos,
                  vocab.subtask_tokens["craft_planks"]]
        decoded = vocab.decode_plan(tokens)
        assert decoded[0] == "mine_logs"
        assert decoded[1].startswith("<invalid:")
        assert len(decoded) == 2

    def test_progress_beyond_range_raises(self):
        # Out-of-range progress used to alias to the last progress token,
        # which silently corrupts long-horizon prompts; it is now an error
        # (per-vocabulary max_progress, see tests/test_scenarios.py).
        vocab = build_vocabulary()
        with pytest.raises(ValueError):
            vocab.encode_prompt("wooden", 100)
        assert vocab.encode_prompt("wooden", vocab.max_progress - 1)[2] == \
            vocab.progress_tokens[vocab.max_progress - 1]


class TestPlannerDatasetAndNetwork:
    def test_dataset_shapes(self):
        vocab = build_vocabulary()
        tokens, mask = build_planner_dataset(MINECRAFT_SUITE, vocab, max_length=18)
        assert tokens.shape == mask.shape
        assert tokens.shape[0] == sum(len(t.plan) for t in MINECRAFT_SUITE.tasks())
        # Prompt positions are never included in the loss.
        assert not mask[:, :4].any()

    def test_network_forward_shape(self):
        vocab = build_vocabulary()
        config = PlannerConfig(name="tiny", benchmark="minecraft", num_layers=1, dim=16,
                               num_heads=2, mlp_dim=32)
        network = PlannerNetwork(config, vocab.size)
        with no_grad():
            logits = network(np.array([[1, 2, 3]]))
        assert logits.shape == (1, 3, vocab.size)

    def test_outlier_channels_installed(self):
        vocab = build_vocabulary()
        config = PLANNER_CONFIGS["jarvis"]
        network = PlannerNetwork(config, vocab.size)
        channels = network.outlier_channel_indices
        assert len(channels) == config.outlier_channels
        block = network.transformer.blocks[0]
        o_weight = np.abs(block.attn.o_proj.weight.data)
        boosted = o_weight[:, channels].mean()
        others = np.delete(o_weight, channels, axis=1).mean()
        assert boosted > 4.0 * others

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PlannerConfig(name="bad", benchmark="minecraft", dim=30, num_heads=4)
        with pytest.raises(ValueError):
            PlannerConfig(name="bad", benchmark="minecraft", dim=16, num_heads=4,
                          outlier_channels=16)


class TestTrainedPlanner:
    def test_cached_planner_is_accurate(self, jarvis_system):
        network, vocab = get_planner_network("jarvis")
        assert plan_accuracy(network, MINECRAFT_SUITE, vocab) >= 0.95

    def test_deployed_float_plans_match_recipes(self, deployed_planner):
        for task in MINECRAFT_SUITE.tasks():
            assert deployed_planner.plan(task.name, 0, quantized=False) == list(task.plan)

    def test_deployed_quantized_plans_match_recipes(self, deployed_planner):
        for task_name in ("wooden", "stone", "iron"):
            expected = list(MINECRAFT_SUITE.get(task_name).plan)
            assert deployed_planner.plan(task_name, 0, quantized=True) == expected

    def test_replanning_from_progress(self, deployed_planner):
        task = MINECRAFT_SUITE.get("stone")
        assert deployed_planner.plan("stone", 2, quantized=True) == list(task.plan[2:])

    def test_planner_activations_have_outliers(self, deployed_planner):
        activations = deployed_planner.capture_activations("wooden", 0, quantized=False)
        ratios = [outlier_ratio(a) for a in activations.values()]
        assert max(ratios) > 5.0

    def test_output_bounds_available_for_all_components(self, deployed_planner):
        bounds = deployed_planner.output_bounds()
        assert set(bounds) == set(deployed_planner.weights.component_names())
        assert all(b > 0 for b in bounds.values())

    def test_errors_corrupt_plans_at_high_ber(self, deployed_planner):
        wrong = 0
        for seed in range(6):
            injector = ErrorInjector(UniformErrorModel(3e-3),
                                     rng=np.random.default_rng(seed))
            plan = deployed_planner.plan("wooden", 0, hooks=GemmHooks(injector=injector))
            wrong += plan != list(MINECRAFT_SUITE.get("wooden").plan)
        assert wrong >= 4

    def test_macs_per_decode_step_grows_with_context(self, deployed_planner):
        assert deployed_planner.macs_per_decode_step(10) > deployed_planner.macs_per_decode_step(4)

    def test_logits_shape(self, deployed_planner):
        logits = deployed_planner.logits("wooden", 0, quantized=False)
        assert logits.shape == (deployed_planner.vocab.size,)


class TestWeightRotation:
    def test_extract_weights_component_names(self, jarvis_system):
        network, _ = get_planner_network("jarvis")
        weights = extract_planner_weights(network)
        names = weights.component_names()
        assert "layer0.q" in names and "head" in names
        assert len(names) == 7 * weights.config.num_layers + 1

    def test_rotation_requires_orthonormal(self, jarvis_system):
        network, _ = get_planner_network("jarvis")
        weights = extract_planner_weights(network)
        with pytest.raises(ValueError):
            weights.apply_rotation(np.ones((weights.dim, weights.dim)))
        with pytest.raises(ValueError):
            weights.apply_rotation(np.eye(4))

    def test_rotation_preserves_function(self, jarvis_system, jarvis_system_rotated):
        plain = jarvis_system.planner
        rotated = jarvis_system_rotated.planner
        for task_name in ("wooden", "chicken"):
            assert rotated.plan(task_name, 0, quantized=False) == \
                plain.plan(task_name, 0, quantized=False)

    def test_rotation_reduces_outliers_and_bounds(self, jarvis_system, jarvis_system_rotated):
        plain_acts = jarvis_system.planner.capture_activations("wooden", 0, quantized=False)
        rot_acts = jarvis_system_rotated.planner.capture_activations("wooden", 0,
                                                                     quantized=False)
        key = sorted(plain_acts)[0]
        assert outlier_ratio(rot_acts[key]) < outlier_ratio(plain_acts[key])

        plain_bounds = jarvis_system.planner.output_bounds()
        rot_bounds = jarvis_system_rotated.planner.output_bounds()
        writers = [n for n in plain_bounds if n.endswith(".o") or n.endswith(".down")]
        assert np.mean([rot_bounds[n] for n in writers]) < \
            np.mean([plain_bounds[n] for n in writers])

    def test_rotated_flag_set(self, jarvis_system_rotated):
        assert jarvis_system_rotated.planner.weights.rotated
        assert jarvis_system_rotated.planner.weights.rotation is not None

    def test_hadamard_used_for_power_of_two_dim(self):
        config = PLANNER_CONFIGS["jarvis"]
        rotation = rotation_matrix_for_dim(config.dim)
        if config.dim & (config.dim - 1) == 0:
            np.testing.assert_allclose(rotation, hadamard_matrix(config.dim))
