"""Tests for convolution, pooling, attention and the Transformer blocks."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    GlobalAvgPool2d,
    GptTransformer,
    LlamaTransformer,
    MaxPool2d,
    MultiHeadAttention,
    Tensor,
    causal_mask,
    conv_output_size,
    no_grad,
)
from repro.nn.transformer import CONTROLLER_COMPONENTS, GptBlock, LlamaBlock, PLANNER_COMPONENTS


def reference_conv2d(x, weight, bias, stride, padding):
    """Naive direct convolution used as a correctness oracle."""
    batch, in_c, height, width = x.shape
    out_c, _, k, _ = weight.shape
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = conv_output_size(height, k, stride, padding)
    out_w = conv_output_size(width, k, stride, padding)
    out = np.zeros((batch, out_c, out_h, out_w))
    for b in range(batch):
        for oc in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x_pad[b, :, i * stride:i * stride + k, j * stride:j * stride + k]
                    out[b, oc, i, j] = (patch * weight[oc]).sum() + bias[oc]
    return out


class TestConv2d:
    def test_matches_reference(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 7, 7))
        expected = reference_conv2d(x, conv.weight.data, conv.bias.data, 2, 1)
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, atol=1e-10)

    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, kernel_size=3, stride=3, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 3, 24, 24))))
        assert out.shape == (1, 8, 8, 8)

    def test_channel_mismatch_raises(self, rng):
        conv = Conv2d(3, 4, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 2, 8, 8))))

    def test_gradients_flow(self, rng):
        conv = Conv2d(1, 2, kernel_size=3, padding=1, rng=rng)
        x = Tensor(rng.normal(size=(1, 1, 5, 5)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert conv.weight.grad is not None
        assert conv.weight.grad.shape == conv.weight.data.shape

    def test_too_small_input_raises(self, rng):
        conv = Conv2d(1, 1, kernel_size=5, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 1, 3, 3))))


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(Tensor(x)).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        out = GlobalAvgPool2d()(Tensor(x)).data
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), atol=1e-12)

    def test_pool_too_small_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(4)(Tensor(rng.normal(size=(1, 1, 2, 2))))


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_invalid_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng=rng)

    def test_causal_mask_blocks_future(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng, causal=True)
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data
        modified = x.copy()
        modified[0, -1] += 10.0  # changing the future must not affect earlier positions
        out = attn(Tensor(modified)).data
        np.testing.assert_allclose(base[0, :-1], out[0, :-1], atol=1e-9)

    def test_non_causal_attends_globally(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng, causal=False)
        x = rng.normal(size=(1, 4, 8))
        base = attn(Tensor(x)).data
        modified = x.copy()
        modified[0, -1] += 5.0
        out = attn(Tensor(modified)).data
        assert not np.allclose(base[0, 0], out[0, 0])

    def test_causal_mask_helper(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert (mask[np.triu_indices(4, k=1)] < 0).all()
        assert (mask[np.tril_indices(4)] == 0).all()


class TestTransformers:
    def test_llama_stack(self, rng):
        model = LlamaTransformer(2, 16, 4, 32, rng)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_gpt_stack(self, rng):
        model = GptTransformer(2, 16, 4, 32, rng)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_llama_block_components_exist(self, rng):
        block = LlamaBlock(16, 4, 32, rng)
        names = dict(block.named_parameters())
        assert "attn.q_proj.weight" in names
        assert "mlp.down.weight" in names
        assert set(PLANNER_COMPONENTS) == {"q", "k", "v", "o", "gate", "up", "down"}

    def test_gpt_block_components_exist(self, rng):
        block = GptBlock(16, 4, 32, rng)
        names = dict(block.named_parameters())
        assert "attn_norm.gamma" in names and "mlp.fc1.bias" in names
        assert set(CONTROLLER_COMPONENTS) == {"q", "k", "v", "o", "fc1", "fc2"}

    def test_transformer_trains(self, rng):
        from repro.train import Adam, mse_loss

        model = LlamaTransformer(1, 8, 2, 16, rng, causal=False)
        optimizer = Adam(model.parameters(), lr=5e-3)
        x = rng.normal(size=(4, 3, 8))
        target = rng.normal(size=(4, 3, 8))
        first = None
        for _ in range(30):
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(x)), target)
            loss.backward()
            optimizer.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first
