"""Batched-runtime equivalence tests.

The batched runtime (see ``docs/architecture.md``, "The batched runtime")
is a pure performance feature at three levels — fused Q/K/V projections,
cross-prompt batched decode, and vectorized campaign trial batches.  Every
test here asserts the contract that makes that true: batched execution is
**bit-identical** to its unbatched counterpart — outputs, counters, and
fault-injection RNG streams.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.core import ProtectionConfig
from repro.eval import RunTable, TrialSpec, run_campaign
from repro.eval.runtable import record_from_trial
from repro.faults import ErrorInjector, UniformErrorModel
from repro.quant import GemmHooks, KernelContext


QKV = ("layer0.q", "layer0.k", "layer0.v")


def _injector(seed: int, ber: float = 1e-3, targets=None) -> ErrorInjector:
    return ErrorInjector(UniformErrorModel(ber), rng=np.random.default_rng(seed),
                         target_components=targets)


class TestFusedQKV:
    """Level 1: Q/K/V as one stacked GEMM == three split projections."""

    def test_fused_bit_identical_to_split(self, deployed_planner, rng):
        layers = {name: deployed_planner._quantized[name] for name in QKV}
        split = KernelContext(layers, spec=deployed_planner.spec)
        fused = KernelContext(layers, spec=deployed_planner.spec)
        x = rng.normal(size=(5, layers[QKV[0]].in_features))
        expected = tuple(split.qgemm(name, x) for name in QKV)
        for a, b in zip(expected, fused.qgemm_multi(QKV, x)):
            assert np.array_equal(a, b)

    def test_targeted_injection_lands_only_in_its_slice(self, deployed_planner,
                                                        rng):
        """A fault aimed at ``*.k`` flips the same bits fused as split, and
        the q/v outputs stay bit-identical to the clean reference."""
        layers = {name: deployed_planner._quantized[name] for name in QKV}
        spec = deployed_planner.spec
        x = rng.normal(size=(4, layers[QKV[0]].in_features))

        clean = KernelContext(layers, spec=spec)
        clean_out = tuple(clean.qgemm(name, x) for name in QKV)

        split_inj = _injector(99, ber=1e-2, targets=["*.k"])
        split = KernelContext(layers, hooks=GemmHooks(injector=split_inj),
                              spec=spec)
        split_out = tuple(split.qgemm(name, x) for name in QKV)

        fused_inj = _injector(99, ber=1e-2, targets=["*.k"])
        fused = KernelContext(layers, hooks=GemmHooks(injector=fused_inj),
                              spec=spec)
        fused_out = fused.qgemm_multi(QKV, x)

        assert split_inj.stats.bits_flipped > 0
        assert split_inj.stats.bits_flipped == fused_inj.stats.bits_flipped
        for i, name in enumerate(QKV):
            assert np.array_equal(split_out[i], fused_out[i]), name
        # q and v never saw the fault; k did.
        assert np.array_equal(fused_out[0], clean_out[0])
        assert np.array_equal(fused_out[2], clean_out[2])
        assert not np.array_equal(fused_out[1], clean_out[1])

    def test_mac_attribution_per_component(self, deployed_planner, rng):
        layers = {name: deployed_planner._quantized[name] for name in QKV}
        split = KernelContext(layers, spec=deployed_planner.spec)
        fused = KernelContext(layers, spec=deployed_planner.spec)
        x = rng.normal(size=(3, layers[QKV[0]].in_features))
        for name in QKV:
            split.qgemm(name, x)
        fused.qgemm_multi(QKV, x)
        assert split.counters.macs_per_component == \
            fused.counters.macs_per_component
        assert split.counters.macs == fused.counters.macs
        assert split.counters.output_elements == fused.counters.output_elements


class TestBatchedDecode:
    """Level 2: N prompts through one batched GEMM == N serial decodes."""

    REQUESTS = [("wooden", 0), ("stone", 0), ("iron", 0), ("seed", 0)]

    def test_matches_serial_tokens_and_logits(self, deployed_planner):
        serial = [deployed_planner.decode_tokens(t, p, collect_logits=True)
                  for t, p in self.REQUESTS]
        batched = deployed_planner.decode_tokens_batch(self.REQUESTS,
                                                       collect_logits=True)
        for (st, sl), (bt, bl) in zip(serial, batched):
            assert st == bt
            assert len(sl) == len(bl)
            for a, b in zip(sl, bl):
                assert np.array_equal(a, b)

    def test_uncached_batch_matches_serial(self, deployed_planner):
        """``use_cache=False`` equivalence holds at batch > 1 too."""
        serial = [deployed_planner.decode_tokens(t, p, use_cache=False)
                  for t, p in self.REQUESTS]
        batched = deployed_planner.decode_tokens_batch(self.REQUESTS,
                                                       use_cache=False)
        assert [tokens for tokens, _ in batched] == \
            [tokens for tokens, _ in serial]

    def test_counters_match_serial(self, deployed_planner):
        serial_ctx = [deployed_planner.kernel_context() for _ in self.REQUESTS]
        for (t, p), ctx in zip(self.REQUESTS, serial_ctx):
            deployed_planner.plan(t, p, context=ctx)
        batch_ctx = [deployed_planner.kernel_context() for _ in self.REQUESTS]
        deployed_planner.plan_batch(self.REQUESTS, contexts=batch_ctx)
        for sc, bc in zip(serial_ctx, batch_ctx):
            assert sc.counters.as_dict() == bc.counters.as_dict()

    def test_per_prompt_rng_independence(self, deployed_planner):
        """Each lane's injection stream is untouched by its siblings: the
        flips a prompt sees in a batch equal the flips it sees alone."""
        alone_flips = []
        for i, (t, p) in enumerate(self.REQUESTS):
            hooks = GemmHooks(injector=_injector(1000 + i, ber=1e-4))
            deployed_planner.decode_tokens(t, p, hooks=hooks)
            alone_flips.append(hooks.injector.stats.bits_flipped)

        batch_hooks = [GemmHooks(injector=_injector(1000 + i, ber=1e-4))
                       for i in range(len(self.REQUESTS))]
        deployed_planner.decode_tokens_batch(self.REQUESTS, hooks=batch_hooks)
        batch_flips = [h.injector.stats.bits_flipped for h in batch_hooks]
        assert batch_flips == alone_flips
        assert sum(batch_flips) > 0

    def test_injected_tokens_match_serial(self, deployed_planner):
        serial = [deployed_planner.decode_tokens(
                      t, p, hooks=GemmHooks(injector=_injector(50 + i)))[0]
                  for i, (t, p) in enumerate(self.REQUESTS)]
        batched = deployed_planner.decode_tokens_batch(
            self.REQUESTS,
            hooks=[GemmHooks(injector=_injector(50 + i))
                   for i in range(len(self.REQUESTS))])
        assert [tokens for tokens, _ in batched] == serial

    def test_single_prompt_fault_never_perturbs_siblings(self, deployed_planner):
        """A fault targeted at one lane leaves every other lane's output
        bit-identical to its clean decode."""
        clean = [deployed_planner.decode_tokens(t, p, collect_logits=True)
                 for t, p in self.REQUESTS]
        hooks = [None, GemmHooks(injector=_injector(7, ber=1e-2)), None, None]
        batched = deployed_planner.decode_tokens_batch(self.REQUESTS,
                                                       hooks=hooks,
                                                       collect_logits=True)
        assert hooks[1].injector.stats.bits_flipped > 0
        for i in (0, 2, 3):
            assert batched[i][0] == clean[i][0], f"lane {i} tokens perturbed"
            for a, b in zip(clean[i][1], batched[i][1]):
                assert np.array_equal(a, b), f"lane {i} logits perturbed"

    def test_batch_of_one_matches_serial(self, deployed_planner):
        tokens, _ = deployed_planner.decode_tokens("wooden", 0)
        [(batched, _)] = deployed_planner.decode_tokens_batch([("wooden", 0)])
        assert batched == tokens

    def test_shared_hooks_object_rejected(self, deployed_planner):
        with pytest.raises(TypeError, match="per prompt"):
            deployed_planner.decode_tokens_batch(
                self.REQUESTS, hooks=GemmHooks(injector=_injector(0)))


class TestExecutorTrialBatch:
    """Level 3 (executor): ``run_trial_batch`` == seed-for-seed ``run_trial``."""

    def _payloads(self, trials, spec_key="k", condition="c"):
        return [record_from_trial(trial, spec_key=spec_key, condition=condition,
                                  system="jarvis", task="wooden", seed=seed,
                                  trial_index=seed).result_payload()
                for seed, trial in enumerate(trials)]

    def test_batch_matches_serial_trials(self, jarvis_executor):
        protection = ProtectionConfig(error_model=UniformErrorModel(1e-3),
                                      anomaly_detection=True)
        seeds = [0, 1, 2, 3]
        serial = [jarvis_executor.run_trial("wooden", seed=s,
                                            planner_protection=protection,
                                            controller_protection=protection)
                  for s in seeds]
        batched = jarvis_executor.run_trial_batch(
            "wooden", seeds, planner_protection=protection,
            controller_protection=protection)
        assert self._payloads(batched) == self._payloads(serial)

    def test_single_seed_falls_back_to_run_trial(self, jarvis_executor):
        serial = jarvis_executor.run_trial("wooden", seed=5)
        [batched] = jarvis_executor.run_trial_batch("wooden", [5])
        assert self._payloads([batched]) == self._payloads([serial])

    def test_empty_seed_list_returns_empty(self, jarvis_executor):
        assert jarvis_executor.run_trial_batch("wooden", []) == []

    def test_duplicate_seeds_get_identical_lanes(self, jarvis_executor):
        """Each lane owns its RNG streams, so a repeated seed repeats its
        trial exactly — no cross-lane stream sharing."""
        protection = ProtectionConfig(error_model=UniformErrorModel(1e-3))
        first, second, other = jarvis_executor.run_trial_batch(
            "wooden", [4, 4, 9], planner_protection=protection,
            controller_protection=protection)
        assert self._payloads([first]) == self._payloads([second])
        assert self._payloads([first]) != self._payloads([other])

    def test_differing_protections_stay_batch_local(self, jarvis_executor):
        """A protection applies to every seed of its batch and leaks into no
        other batch: a clean batch after a protected one still matches the
        fault-free serial trials seed for seed."""
        protection = ProtectionConfig(error_model=UniformErrorModel(1e-2))
        seeds = [0, 1]
        protected = jarvis_executor.run_trial_batch(
            "wooden", seeds, planner_protection=protection,
            controller_protection=protection)
        assert all(t.planner_bits_flipped + t.controller_bits_flipped > 0
                   for t in protected)
        clean = jarvis_executor.run_trial_batch("wooden", seeds)
        serial = [jarvis_executor.run_trial("wooden", seed=s) for s in seeds]
        assert all(t.planner_bits_flipped + t.controller_bits_flipped == 0
                   for t in clean)
        assert self._payloads(clean) == self._payloads(serial)
        assert self._payloads(clean) != self._payloads(protected)


class TestCampaignVectorPath:
    """Level 3 (campaign): vectorized and scalar runs are byte-identical."""

    def _specs(self, num_trials=3):
        return [
            TrialSpec(condition="clean", system="jarvis", task="wooden",
                      num_trials=num_trials, seed=0),
            TrialSpec(condition="faulty", system="jarvis", task="wooden",
                      num_trials=num_trials, seed=0,
                      controller_protection=ProtectionConfig(
                          error_model=UniformErrorModel(1e-3)),
                      params=(("ber", "1e-3"),)),
        ]

    @staticmethod
    def _profile_rows(out_dir, name):
        path = out_dir / "profiles" / f"{name}.csv"
        with open(path, newline="") as handle:
            return list(csv.DictReader(handle))

    def test_vector_on_off_byte_identical(self, tmp_path):
        specs = self._specs()
        vec = run_campaign(specs, out=tmp_path / "vec", name="v")
        scalar = run_campaign(specs, out=tmp_path / "scalar", name="v",
                              vector=False)
        assert vec.csv_path.read_bytes() == scalar.csv_path.read_bytes()
        assert vec.json_path.read_bytes() == scalar.json_path.read_bytes()

        vec_rows = self._profile_rows(tmp_path / "vec", "v")
        assert {(r["vector_path"], r["batch_size"]) for r in vec_rows} == \
            {("batched", "3")}
        scalar_rows = self._profile_rows(tmp_path / "scalar", "v")
        assert {(r["vector_path"], r["batch_size"]) for r in scalar_rows} == \
            {("scalar", "1")}

    def test_parallel_vectorized_byte_identical(self, tmp_path):
        specs = self._specs(2)
        serial = run_campaign(specs, jobs=1, out=tmp_path / "s", name="p")
        pooled = run_campaign(specs, jobs=2, out=tmp_path / "p", name="p")
        assert serial.csv_path.read_bytes() == pooled.csv_path.read_bytes()

    def test_canonical_table_free_of_profile_columns(self, tmp_path):
        """batch_size / vector_path never leak into the canonical files."""
        result = run_campaign(self._specs(2)[:1], out=tmp_path, name="c")
        header = result.csv_path.read_text().splitlines()[0]
        assert "vector_path" not in header and "batch_size" not in header
        table = RunTable.read_csv(result.csv_path)
        assert all(r.batch_size == 0 and r.vector_path == "" for r in table)
