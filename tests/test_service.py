"""Tests for the network-backed campaign service: the HTTP/JSON work-queue
protocol, the WorkQueue-shaped client, worker-daemon integration, graceful
shutdown, work stealing, and the autoscaler's sizing rules.

The invariant under test throughout: a table merged from HTTP workers is
byte-identical to the single-host serial table, and every queue semantic
(lease expiry, clock-skew-safe reclamation, idempotent enqueue) behaves
identically whether a worker sits on the filesystem or behind a socket.
"""

import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.core import ProtectionConfig
from repro.eval import (
    CampaignPlan,
    TrialSpec,
    WorkerDaemon,
    WorkQueue,
    merge_run_tables,
    run_campaign,
)
from repro.eval.campaign import enumerate_cells
from repro.eval.runtable import RunTable
from repro.eval.service import (AutoScaler, CampaignService, QueueClient,
                                ServiceError)
from repro.faults.models import UniformErrorModel

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
from load_service import synthetic_record  # noqa: E402


def _specs(num_trials=2):
    return [
        TrialSpec(condition="clean", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0),
        TrialSpec(condition="faulty", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0,
                  controller_protection=ProtectionConfig(
                      error_model=UniformErrorModel(1e-3)),
                  params=(("ber", "1e-3"),)),
    ]


@pytest.fixture()
def service(tmp_path):
    with CampaignService(tmp_path / "queue", lease_ttl=60.0) as running:
        yield running


@pytest.fixture()
def client(service):
    """A queue client whose keep-alive connections close on teardown."""
    client = QueueClient(service.url)
    yield client
    client.close()


# ----------------------------------------------------------------------
# Protocol: the queue surface over the wire
# ----------------------------------------------------------------------
class TestServiceProtocol:
    def test_config_identifies_the_service(self, service, client):
        assert client.lease_ttl == 60.0
        assert client.root == service.url  # printable origin for logs
        assert client.backend == "http"

    def test_client_rejects_a_non_service_endpoint(self):
        class NotAService(BaseHTTPRequestHandler):
            def do_GET(self):
                body = json.dumps({"hello": "world"}).encode()
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), NotAService)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with pytest.raises(ServiceError, match="not a campaign service"):
                QueueClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()

    def test_client_rejects_a_non_http_url(self):
        with pytest.raises(ServiceError, match="http://host:port"):
            QueueClient("ftp://somewhere:21")

    def test_close_covers_every_threads_connection(self, service, client):
        """``close()`` tears down the keep-alive socket of *every* thread
        that ever used the client, not just the closer's own."""
        workers = [threading.Thread(target=client.counts) for _ in range(3)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        client.counts()  # the main thread's connection
        connections = list(client._connections)
        assert len(connections) >= 2  # per-thread sockets were tracked
        client.close()
        assert client._connections == []
        assert all(conn.sock is None for conn in connections)

    def test_closed_client_reconnects_lazily(self, service, client):
        client.counts()
        client.close()
        client.close()  # idempotent
        # The client stays usable: the next request dials a fresh socket.
        assert client.counts()["pending"] == 0

    def test_enqueue_is_idempotent_over_http(self, service, client):
        plan = CampaignPlan(name="demo", specs=_specs(4))
        first = client.enqueue(plan, batch=2)
        assert first.new_tasks == 4 and first.enqueued_cells == 8
        again = client.enqueue(plan, batch=2)
        assert again.new_tasks == 0 and again.skipped_tasks == 4
        stored, = client.plans()
        assert stored.plan_hash() == plan.plan_hash()

    def test_conflicting_plan_surfaces_the_server_error(self, service, client):
        client.enqueue(CampaignPlan(name="demo", specs=_specs(2)))
        with pytest.raises(ServiceError, match="different plan"):
            client.enqueue(CampaignPlan(name="demo", specs=_specs(5)))

    def test_unknown_endpoint_is_a_404(self, service, client):
        with pytest.raises(ServiceError, match="404"):
            client._request("/api/no-such-thing")

    def test_claim_heartbeat_complete_lifecycle(self, service, client):
        client.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=4)
        task = client.claim("w1")
        assert task is not None and len(task.cells) == 4
        assert client.counts() == {"pending": 0, "leased": 1, "done": 0,
                                   "failed": 0}
        assert client.lease_ids() == [task.task_id]
        client.heartbeat(task)
        assert client.complete(task) is True
        assert client.counts()["done"] == 1
        assert client.claim("w2") is None  # drained

    def test_claimed_task_rebuilds_exact_cells(self, service, client):
        specs = _specs(2)
        client.enqueue(CampaignPlan(name="demo", specs=specs), batch=8)
        task = client.claim("w1")
        assert [(c.spec_key, c.seed) for c in task.cells] == \
            [(c.spec_key, c.seed) for c in enumerate_cells(specs)]

    def test_fail_parks_the_task(self, service, client):
        client.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=4)
        task = client.claim("w1")
        client.fail(task)
        assert client.counts() == {"pending": 0, "leased": 0, "done": 0,
                                   "failed": 1}


# ----------------------------------------------------------------------
# Result rows over the wire
# ----------------------------------------------------------------------
class TestRowStreaming:
    def _drain_with_synthetic_rows(self, client, worker_id):
        rows = 0
        while True:
            task = client.claim(worker_id)
            if task is None:
                break
            writer, = client.result_writers(worker_id, task.plan_name)
            for cell in task.cells:
                writer.write(synthetic_record(cell, worker_id))
            writer.flush()
            client.complete(task)
            rows += len(task.cells)
        return rows

    def test_rows_land_server_side_with_profile_sidecar(self, service, client):
        client.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        rows = self._drain_with_synthetic_rows(client, "streamer")
        assert rows == 4
        results = service.queue.results_dir / "streamer"
        canonical = RunTable.read_csv(results / "demo.csv")
        assert len(canonical) == 4
        sidecar = RunTable.read_csv(results / "profiles" / "demo.csv")
        assert {record.queue_backend for record in sidecar} == {"http"}

    def test_progress_endpoint_tracks_rows_and_backlog(self, service, client):
        client.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        before = client.progress()
        assert before["plans"][0]["pending_tasks"] == 2
        assert before["plans"][0]["rows_streamed"] == 0
        self._drain_with_synthetic_rows(client, "streamer")
        after = client.progress()
        assert after["plans"][0]["pending_tasks"] == 0
        assert after["plans"][0]["rows_streamed"] == 4
        assert after["plans"][0]["total_cells"] == 4
        assert after["rows_written"] == 4


# ----------------------------------------------------------------------
# The central invariant, through a real daemon
# ----------------------------------------------------------------------
class TestHttpWorkerByteIdentity:
    def test_http_daemon_matches_serial(self, service, client, tmp_path):
        specs = _specs(2)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        client.enqueue(CampaignPlan(name="demo", specs=specs), batch=2)
        stats = WorkerDaemon(client, jobs=1, worker_id="http-w").run()
        assert stats.tasks_completed == 2 and stats.cells_executed == 4
        merged = merge_run_tables(tmp_path / "merged", [service.queue.root])
        assert merged[0].rows == 4
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()
        assert (tmp_path / "merged" / "demo.json").read_bytes() == \
            serial.json_path.read_bytes()
        sidecar = RunTable.read_csv(
            service.queue.results_dir / "http-w" / "profiles" / "demo.csv")
        assert {record.queue_backend for record in sidecar} == {"http"}


# ----------------------------------------------------------------------
# Lease reclamation over HTTP, including clock skew
# ----------------------------------------------------------------------
class TestServiceReclaim:
    def test_expired_lease_is_reclaimed_over_http(self, service, client):
        client.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        task = client.claim("dead-worker")
        assert client.reclaim_expired() == []  # heartbeat is fresh
        lease = service.queue.leases_dir / f"{task.task_id}.json"
        stale = time.time() - 1000
        os.utime(lease, (stale, stale))  # frozen heartbeat, long expired
        assert client.reclaim_expired() == [task.task_id]
        assert task.task_id in client.pending_ids()
        assert client.complete(task) is False  # informational, not an error

    def test_advancing_skewed_heartbeat_survives_reclaim(self, tmp_path):
        """Service-level clock-skew regression: a lease whose mtime looks
        long-expired in absolute terms but *advanced* since the service
        last observed it belongs to a live worker with a lagging clock —
        ``POST /api/reclaim`` must leave it alone, then reclaim it once
        the heartbeat truly freezes."""
        with CampaignService(tmp_path / "queue", lease_ttl=1.0) as service:
            client = QueueClient(service.url)
            try:
                client.enqueue(CampaignPlan(name="demo", specs=_specs(2)),
                               batch=2)
                claimed_at = time.time()
                task = client.claim("skewed-worker")
                lease = service.queue.leases_dir / f"{task.task_id}.json"
                time.sleep(2.0)  # well past the 1s TTL in absolute terms
                # The skewed worker's heartbeat: ahead of the mtime the
                # service observed at claim time, far behind wall-clock.
                skewed = claimed_at + 0.3
                os.utime(lease, (skewed, skewed))
                assert client.reclaim_expired() == []  # advanced => live
                # The worker dies; the mtime freezes where it was.
                assert client.reclaim_expired() == [task.task_id]
            finally:
                client.close()

    def test_fresh_service_reclaims_by_absolute_age(self, tmp_path):
        """A restarted service has no observation history: a long-expired
        frozen lease must still be reclaimed on the first scan."""
        queue = WorkQueue(tmp_path / "queue", lease_ttl=60.0)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        task = queue.claim("dead-worker")
        stale = time.time() - 1000
        os.utime(task.lease_path, (stale, stale))
        with CampaignService(tmp_path / "queue", lease_ttl=60.0) as service:
            client = QueueClient(service.url)
            try:
                assert client.reclaim_expired() == [task.task_id]
            finally:
                client.close()


# ----------------------------------------------------------------------
# Work stealing through the service
# ----------------------------------------------------------------------
class TestWorkStealing:
    def test_prefer_plan_orders_claims_then_steals_deepest(self, service, client):
        shallow = CampaignPlan(name="shallow", specs=_specs(1)[:1])
        deep = CampaignPlan(name="deep", specs=_specs(6))
        client.enqueue(shallow, batch=1)   # 1 task
        client.enqueue(deep, batch=2)      # 6 tasks
        assert client.pending_by_plan() == {"shallow": 1, "deep": 6}
        first = client.claim("w", prefer_plan="shallow")
        assert first.plan_name == "shallow"
        stolen = client.claim("w", prefer_plan="shallow")
        assert stolen.plan_name == "deep"  # affinity drained: steal deepest

    def test_daemon_counts_stolen_tasks_over_http(self, service, client):
        client.enqueue(CampaignPlan(name="mine", specs=_specs(1)[:1]),
                       batch=1)
        client.enqueue(CampaignPlan(name="other", specs=_specs(1)), batch=2)
        daemon = WorkerDaemon(client, worker_id="w", plan_affinity="mine")
        stats = daemon.run()
        assert stats.tasks_completed == 2  # 1 owned + 1 stolen
        assert stats.tasks_stolen == 1
        assert stats.cells_executed == 3


# ----------------------------------------------------------------------
# Graceful shutdown and transient-error retry
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_shutdown_before_run_claims_nothing(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        daemon = WorkerDaemon(queue, worker_id="w")
        daemon.request_shutdown()
        stats = daemon.run()
        assert stats.tasks_completed == 0
        assert queue.counts()["pending"] == 2  # nothing claimed or leaked
        assert queue.counts()["leased"] == 0

    def test_sigterm_mid_drain_settles_inflight_and_stops(self, tmp_path):
        """A SIGTERM'd worker finishes the batch it holds, streams its rows,
        releases the lease into done/, and leaves the rest pending."""
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(4)), batch=2)
        daemon = WorkerDaemon(queue, worker_id="w")
        original = daemon._run_inline

        def run_inline_then_sigterm(task, stats):
            original(task, stats)
            daemon.request_shutdown()  # what the SIGTERM handler does

        daemon._run_inline = run_inline_then_sigterm
        stats = daemon.run()
        assert stats.tasks_completed == 1
        counts = queue.counts()
        assert counts["leased"] == 0  # the in-flight lease was settled
        assert counts["done"] == 1
        assert counts["pending"] == 3  # remaining work left for the fleet

    def test_retrying_recovers_from_transient_io_errors(self, tmp_path):
        daemon = WorkerDaemon(WorkQueue(tmp_path / "q"), worker_id="w",
                              retry_attempts=4, retry_delay=0.001)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("service briefly unreachable")
            return "ok"

        assert daemon._retrying(flaky) == "ok"
        assert calls["n"] == 3

    def test_retrying_raises_after_exhausting_attempts(self, tmp_path):
        daemon = WorkerDaemon(WorkQueue(tmp_path / "q"), worker_id="w",
                              retry_attempts=3, retry_delay=0.001)
        calls = {"n": 0}

        def always_down():
            calls["n"] += 1
            raise ConnectionError("hard down")

        with pytest.raises(ConnectionError, match="hard down"):
            daemon._retrying(always_down)
        assert calls["n"] == 3

    def test_client_transport_errors_are_oserrors(self, service, client):
        """The daemon's retry net catches OSError; a dead service must
        surface as one (not an http.client internal)."""
        service.close()
        # Drop the keep-alive connection so the next request must dial the
        # (now closed) listening socket rather than ride the old stream.
        connection = getattr(client._local, "connection", None)
        if connection is not None:
            connection.close()
            client._local.connection = None
        with pytest.raises(OSError):
            client.counts()


# ----------------------------------------------------------------------
# Autoscaler sizing rules
# ----------------------------------------------------------------------
class TestAutoScalerSizing:
    def _scaler(self, service, **kwargs):
        kwargs.setdefault("max_workers", 4)
        kwargs.setdefault("tasks_per_worker", 2)
        return AutoScaler(service.url, **kwargs)

    def test_no_backlog_means_no_workers(self, service):
        scaler = self._scaler(service)
        assert scaler.desired_workers(0, 0, 0.0) == 0

    def test_target_scales_with_pending_depth(self, service):
        scaler = self._scaler(service)
        assert scaler.desired_workers(1, 0, 1.0) == 1
        assert scaler.desired_workers(4, 0, 1.0) == 2
        assert scaler.desired_workers(100, 0, 1.0) == 4  # clamped to max

    def test_min_workers_floor_while_work_remains(self, service):
        scaler = self._scaler(service, min_workers=2)
        assert scaler.desired_workers(1, 0, 1.0) == 2
        assert scaler.desired_workers(0, 1, 1.0) == 2  # leases still out
        assert scaler.desired_workers(0, 0, 1.0) == 0  # drained: go home

    def test_stalled_backlog_bumps_the_fleet(self, service):
        scaler = self._scaler(service)
        # Draining normally: depth alone sets the target.
        assert scaler.desired_workers(2, 0, 1.0) == 1
        # Stalled (no drain despite pending work): one above the current
        # fleet, so a wedged fleet gains capacity instead of patience.
        assert scaler.desired_workers(2, 0, 0.0) == 1  # fleet of zero -> 1
        scaler._procs = [object(), object()]
        assert scaler.desired_workers(2, 0, 0.0) == 3

    def test_validates_fleet_bounds(self, service):
        with pytest.raises(ValueError, match="max_workers"):
            AutoScaler(service.url, max_workers=0)
        with pytest.raises(ValueError, match="min_workers"):
            AutoScaler(service.url, max_workers=2, min_workers=3)
