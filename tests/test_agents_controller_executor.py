"""Tests for the controller surrogate, the executor and the system builders."""

import numpy as np
import pytest

from repro.agents import (
    CONTROLLER_CONFIGS,
    ControllerConfig,
    ControllerNetwork,
    DeployedController,
    TrialResult,
    build_controller_dataset,
    build_protection_hooks,
    controller_agreement,
    get_controller_network,
)
from repro.agents.platforms import (
    PAPER_CONTROLLER_ARCHS,
    PAPER_PLANNER_ARCHS,
    controller_inference_workloads,
    planner_inference_workloads,
    predictor_inference_workloads,
    transformer_workloads,
)
from repro.core import ProtectionConfig, VoltageScalingConfig, default_policy
from repro.core.entropy import action_entropy
from repro.env import ALL_SUBTASKS, MINECRAFT_SUBTASKS, MINECRAFT_SUITE, NUM_ACTIONS, WorldConfig
from repro.faults import UniformErrorModel
from repro.hardware import NOMINAL_VOLTAGE
from repro.nn import no_grad
from repro.quant import GemmHooks


class TestControllerNetwork:
    def test_forward_shape(self):
        config = ControllerConfig(name="tiny", benchmark="minecraft", num_layers=1, dim=16,
                                  num_heads=2, mlp_dim=32)
        network = ControllerNetwork(config)
        with no_grad():
            logits = network(np.array([0, 1]), np.random.default_rng(0).normal(size=(2, 31)))
        assert logits.shape == (2, NUM_ACTIONS)

    def test_dataset_generation(self):
        ids, obs, targets = build_controller_dataset(MINECRAFT_SUITE, MINECRAFT_SUBTASKS,
                                                     num_episodes=2, seed=1)
        assert ids.shape[0] == obs.shape[0] == targets.shape[0]
        assert obs.shape[1] == 31
        np.testing.assert_allclose(targets.sum(axis=1), 1.0)

    def test_cached_controller_agrees_with_oracle(self, jarvis_system):
        network = get_controller_network("jarvis")
        assert controller_agreement(network, MINECRAFT_SUITE, MINECRAFT_SUBTASKS) >= 0.9

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ControllerConfig(name="bad", benchmark="minecraft", dim=30, num_heads=4)
        with pytest.raises(ValueError):
            ControllerConfig(name="bad", benchmark="minecraft", num_obs_tokens=0)


class TestDeployedController:
    def test_quantized_matches_float_argmax(self, deployed_controller, wooden_world):
        wooden_world.set_subtask("mine_logs")
        token = ALL_SUBTASKS.token_id("mine_logs")
        matches = 0
        for _ in range(15):
            obs = wooden_world.observation()
            float_logits = deployed_controller.act_logits(token, obs, quantized=False)
            quant_logits = deployed_controller.act_logits(token, obs, quantized=True)
            matches += int(np.argmax(float_logits) == np.argmax(quant_logits))
            wooden_world.step(int(np.argmax(float_logits)))
        assert matches >= 13

    def test_entropy_lower_on_critical_steps(self, deployed_controller):
        from repro.env import EmbodiedWorld

        world = EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS,
                              WorldConfig(), np.random.default_rng(7))
        world.set_subtask("mine_logs")
        token = ALL_SUBTASKS.token_id("mine_logs")
        exploration_entropy = action_entropy(
            deployed_controller.act_logits(token, world.observation(), quantized=False))
        world.inventory.add("mine_logs")
        world.set_subtask("craft_planks")
        token2 = ALL_SUBTASKS.token_id("craft_planks")
        execution_entropy = action_entropy(
            deployed_controller.act_logits(token2, world.observation(), quantized=False))
        assert execution_entropy < exploration_entropy

    def test_component_names_and_bounds(self, deployed_controller):
        names = deployed_controller.component_names()
        assert "obs_proj" in names and "policy_head" in names and "layer0.fc1" in names
        bounds = deployed_controller.output_bounds()
        assert set(bounds) == set(names)

    def test_activation_capture(self, deployed_controller, wooden_world):
        wooden_world.set_subtask("mine_logs")
        activations = deployed_controller.capture_activations(
            ALL_SUBTASKS.token_id("mine_logs"), wooden_world.observation(), quantized=False)
        assert len(activations) == 2 * deployed_controller.config.num_layers

    def test_macs_per_step_positive(self, deployed_controller):
        assert deployed_controller.macs_per_step > 10_000

    def test_injection_changes_logits(self, deployed_controller, wooden_world):
        from repro.faults import ErrorInjector

        wooden_world.set_subtask("mine_logs")
        token = ALL_SUBTASKS.token_id("mine_logs")
        obs = wooden_world.observation()
        clean = deployed_controller.act_logits(token, obs, quantized=True)
        injector = ErrorInjector(UniformErrorModel(5e-2), rng=np.random.default_rng(0))
        noisy = deployed_controller.act_logits(token, obs, quantized=True,
                                               hooks=GemmHooks(injector=injector))
        assert not np.allclose(clean, noisy)


class TestProtectionHooks:
    def test_clean_protection_has_no_injector(self, rng):
        hooks, injector, detector = build_protection_hooks(ProtectionConfig(), rng)
        assert injector is None and detector is None and hooks.injector is None

    def test_voltage_protection_builds_voltage_model(self, rng):
        hooks, injector, _ = build_protection_hooks(ProtectionConfig(voltage=0.75), rng)
        assert injector is not None
        assert injector.model.describe().startswith("voltage")

    def test_error_model_takes_precedence(self, rng):
        protection = ProtectionConfig(voltage=0.75, error_model=UniformErrorModel(1e-4))
        _, injector, _ = build_protection_hooks(protection, rng)
        assert injector.model.describe().startswith("uniform")

    def test_ad_flag_builds_detector(self, rng):
        _, _, detector = build_protection_hooks(
            ProtectionConfig(voltage=0.8, anomaly_detection=True), rng)
        assert detector is not None

    def test_thundervolt_kind(self, rng):
        from repro.core.baselines import ThUnderVoltInjector

        _, injector, _ = build_protection_hooks(
            ProtectionConfig(voltage=0.8, injector_kind="thundervolt"), rng)
        assert isinstance(injector, ThUnderVoltInjector)


class TestExecutor:
    def test_clean_trial_succeeds(self, jarvis_executor):
        result = jarvis_executor.run_trial("wooden", seed=11)
        assert result.success
        assert 0 < result.steps < 900
        assert result.planner_invocations >= 1
        assert result.controller_steps > 0
        assert len(result.entropy_trace) == result.controller_steps

    def test_clean_trials_across_all_minecraft_tasks(self, jarvis_executor):
        for task in ("stone", "charcoal", "seed", "log"):
            assert jarvis_executor.run_trial(task, seed=3).success

    def test_effective_voltage_nominal_when_clean(self, jarvis_executor):
        result = jarvis_executor.run_trial("wooden", seed=5)
        assert result.effective_voltage() == pytest.approx(NOMINAL_VOLTAGE)
        assert result.computational_energy_j() > 0

    def test_macs_accounting_merges_sources(self, jarvis_executor):
        result = jarvis_executor.run_trial("wooden", seed=6)
        merged = result.macs_by_voltage()
        assert sum(merged.values()) == pytest.approx(
            sum(result.planner_macs_by_voltage.values())
            + sum(result.controller_macs_by_voltage.values())
            + sum(result.predictor_macs_by_voltage.values()))

    def test_high_controller_ber_fails_and_charges_full_budget(self, jarvis_executor):
        protection = ProtectionConfig(error_model=UniformErrorModel(3e-2))
        result = jarvis_executor.run_trial("wooden", seed=7,
                                           controller_protection=protection)
        assert not result.success
        assert result.steps == jarvis_executor.world_config.task_step_limit

    def test_ground_truth_planner_path(self, jarvis_system):
        executor = jarvis_system.executor()
        executor_no_planner = type(executor)(
            controller=jarvis_system.controller, suite=jarvis_system.suite,
            registry=jarvis_system.registry, planner=None,
            predictor=jarvis_system.predictor)
        result = executor_no_planner.run_trial("wooden", seed=2)
        assert result.success
        assert result.planner_invocations == 0
        assert not result.planner_macs_by_voltage

    def test_voltage_scaling_trial_records_schedule(self, jarvis_executor):
        protection = ProtectionConfig(
            anomaly_detection=True,
            voltage_scaling=VoltageScalingConfig(policy=default_policy(),
                                                 entropy_source="oracle"))
        result = jarvis_executor.run_trial("wooden", seed=9,
                                           controller_protection=protection)
        assert result.success
        assert result.voltage_summary["mean_voltage"] < NOMINAL_VOLTAGE
        assert len(set(result.controller_macs_by_voltage)) >= 1
        assert result.effective_voltage() < NOMINAL_VOLTAGE

    def test_predictor_macs_charged_with_predictor_source(self, jarvis_executor):
        protection = ProtectionConfig(
            anomaly_detection=True,
            voltage_scaling=VoltageScalingConfig(policy=default_policy(),
                                                 entropy_source="predictor"))
        result = jarvis_executor.run_trial("wooden", seed=10,
                                           controller_protection=protection)
        assert result.predictor_macs_by_voltage.get(NOMINAL_VOLTAGE, 0) > 0

    def test_run_trials_distinct_seeds(self, jarvis_executor):
        results = jarvis_executor.run_trials("wooden", 3, seed=100)
        assert len(results) == 3
        assert len({r.steps for r in results}) >= 2

    def test_run_trials_invalid_count(self, jarvis_executor):
        with pytest.raises(ValueError):
            jarvis_executor.run_trials("wooden", 0)

    def test_trial_result_is_dataclass_with_traces(self):
        result = TrialResult(task="x", success=True, steps=10, planner_invocations=1,
                             controller_steps=10)
        assert result.macs_by_voltage() == {}


class TestSystemBuilders:
    def test_jarvis_system_components(self, jarvis_system):
        assert jarvis_system.planner is not None
        assert jarvis_system.predictor is not None
        assert jarvis_system.suite.name == "minecraft"
        assert set(jarvis_system.task_names) == set(MINECRAFT_SUITE.task_names)

    def test_rotated_system_flag(self, jarvis_system, jarvis_system_rotated):
        assert not jarvis_system.planner_rotated
        assert jarvis_system_rotated.planner_rotated


class TestPaperScalePlatforms:
    def test_transformer_workloads_cover_all_components(self):
        arch = PAPER_PLANNER_ARCHS["jarvis"]
        workloads = transformer_workloads(arch, tokens=8)
        assert len(workloads) == 7 * arch.num_layers + 1
        with pytest.raises(ValueError):
            transformer_workloads(arch, tokens=0)

    def test_planner_workload_macs_are_teraop_scale(self):
        macs = sum(w.macs for w in planner_inference_workloads("jarvis"))
        assert macs > 1e12

    def test_controller_workload_macs_are_gigaop_scale(self):
        macs = sum(w.macs for w in controller_inference_workloads("jarvis"))
        assert 1e9 < macs < 1e12

    def test_predictor_workloads_are_tiny(self):
        macs = sum(w.macs for w in predictor_inference_workloads())
        assert macs < 1e7

    def test_paper_params_roughly_match_archs(self):
        assert PAPER_PLANNER_ARCHS["jarvis"].params_millions() == pytest.approx(7869, rel=0.15)
        assert PAPER_CONTROLLER_ARCHS["octo"].params_millions() == pytest.approx(27, rel=0.3)

    def test_unknown_platform_raises(self):
        from repro.agents.platforms import paper_stats

        with pytest.raises(KeyError):
            paper_stats("nonexistent")
