"""Tests for distributed campaign scheduling: shards, plans, the file-backed
work queue, worker daemons, and fault-tolerant run-table merging.

The invariant under test throughout: the merged table from any number of
workers/shards — including workers killed mid-run — is byte-identical to the
single-host serial table.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import ProtectionConfig
from repro.core.policies import ConstantVoltagePolicy, REFERENCE_POLICIES
from repro.core.voltage_scaling import VoltageScalingConfig
from repro.eval import (
    CampaignPlan,
    MergeConflictError,
    RunTable,
    Shard,
    TrialSpec,
    WorkQueue,
    WorkerDaemon,
    WorkerStats,
    merge_run_tables,
    parse_shard,
    planning,
    run_campaign,
    shard_scope,
)
from repro.eval.campaign import enumerate_cells, placeholder_record
from repro.eval.scheduler import spec_from_dict, spec_to_dict
from repro.faults.models import (SingleBitErrorModel, UniformErrorModel,
                                 VoltageErrorModel)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _specs(num_trials=2):
    return [
        TrialSpec(condition="clean", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0),
        TrialSpec(condition="faulty", system="jarvis", task="wooden",
                  num_trials=num_trials, seed=0,
                  controller_protection=ProtectionConfig(
                      error_model=UniformErrorModel(1e-3)),
                  params=(("ber", "1e-3"),)),
    ]


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
class TestShard:
    def test_parse_and_validate(self):
        assert parse_shard("2/4") == Shard(index=2, count=4)
        assert str(parse_shard("1/1")) == "1/1"
        for bad in ("", "2", "0/4", "5/4", "a/b", "2/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_grid(self):
        cells = enumerate_cells(_specs(16))
        count = 3
        shards = [Shard(i, count) for i in range(1, count + 1)]
        slices = [shard.filter(cells) for shard in shards]
        assert sum(len(s) for s in slices) == len(cells)
        seen = {(c.spec_key, c.seed) for s in slices for c in s}
        assert len(seen) == len(cells)  # disjoint union covers everything

    def test_assignment_is_stable_under_grid_growth(self):
        """Growing num_trials must not move existing cells between shards."""
        shard = Shard(1, 4)
        small = {(c.spec_key, c.seed): shard.owns(c.spec_key, c.seed)
                 for c in enumerate_cells(_specs(4))}
        grown = {(c.spec_key, c.seed): shard.owns(c.spec_key, c.seed)
                 for c in enumerate_cells(_specs(9))}
        for key, owned in small.items():
            assert grown[key] == owned


# ----------------------------------------------------------------------
# Spec JSON codec
# ----------------------------------------------------------------------
class TestSpecCodec:
    def _protection_zoo(self):
        return [
            None,
            ProtectionConfig(error_model=UniformErrorModel(3.25e-3)),
            ProtectionConfig(voltage=0.78, anomaly_detection=True),
            ProtectionConfig(error_model=VoltageErrorModel(0.76),
                             exposure_scale=2.5, injector_kind="thundervolt"),
            ProtectionConfig(error_model=SingleBitErrorModel(bit=3, rate=0.1),
                             target_components=("*.k", "*.v")),
            ProtectionConfig(anomaly_detection=True,
                             voltage_scaling=VoltageScalingConfig(
                                 policy=REFERENCE_POLICIES["C"],
                                 update_interval=7, entropy_source="oracle")),
            ProtectionConfig(voltage_scaling=VoltageScalingConfig(
                policy=ConstantVoltagePolicy(0.8))),
        ]

    def test_round_trip_preserves_spec_key(self):
        """The codec must preserve the signature (and so the spec key)
        exactly, or distributed participants would enumerate different
        grids and resume would silently mismatch rows."""
        for index, protection in enumerate(self._protection_zoo()):
            spec = TrialSpec(condition=f"cond-{index}", system="jarvis",
                             task="wooden", num_trials=3, seed=5,
                             controller_protection=protection,
                             planner_protection=ProtectionConfig(
                                 anomaly_detection=True),
                             params=(("case", str(index)),))
            rebuilt = spec_from_dict(spec_to_dict(spec))
            assert rebuilt.key() == spec.key()
            assert rebuilt == spec or rebuilt.signature() == spec.signature()

    def test_round_trip_survives_json_text(self):
        spec = _specs()[1]
        rebuilt = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert rebuilt.key() == spec.key()

    def test_local_system_specs_are_rejected(self):
        spec = TrialSpec(condition="x", system="local/foo", task="wooden",
                         num_trials=1)
        with pytest.raises(ValueError, match="in-process"):
            spec_to_dict(spec)


# ----------------------------------------------------------------------
# CampaignPlan
# ----------------------------------------------------------------------
class TestCampaignPlan:
    def test_grid_matches_engine_enumeration(self):
        plan = CampaignPlan(name="demo", specs=_specs(3))
        cells = plan.cells()
        assert len(cells) == plan.total_cells == 6
        assert [(c.spec_key, c.seed) for c in cells] == \
            [(c.spec_key, c.seed) for c in enumerate_cells(_specs(3))]
        assert sum(plan.shard_counts(4)) == 6

    def test_save_load_and_hash_check(self, tmp_path):
        plan = CampaignPlan(name="demo", specs=_specs())
        path = plan.save(tmp_path)
        loaded = CampaignPlan.load(path)
        assert loaded.plan_hash() == plan.plan_hash()
        assert loaded.spec_order() == plan.spec_order()

        data = json.loads(path.read_text())
        data["specs"][0]["seed"] = 99  # tamper
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="hash check"):
            CampaignPlan.load(path)


# ----------------------------------------------------------------------
# RunTable.merge
# ----------------------------------------------------------------------
class TestRunTableMerge:
    def _record(self, seed=0, steps=5, worker="w1"):
        import dataclasses

        cell = enumerate_cells(_specs(4))[0]
        base = placeholder_record(dataclasses.replace(cell, seed=seed))
        return dataclasses.replace(base, steps=steps, wall_time_s=1.0,
                                   worker_id=worker)

    def test_identical_duplicates_dedupe(self):
        """A reclaimed lease re-runs cells: byte-identical duplicates (even
        with different profile metadata) must merge to one row."""
        a = RunTable([self._record(seed=0, worker="host-a")])
        b = RunTable([self._record(seed=0, worker="host-b"),
                      self._record(seed=1, worker="host-b")])
        merged = RunTable.merge(a, b)
        assert len(merged) == 2
        assert merged.get(a._records[0].spec_key, 0).worker_id == "host-a"

    def test_conflicting_duplicates_raise(self):
        a = RunTable([self._record(seed=0, steps=5)])
        b = RunTable([self._record(seed=0, steps=7)])
        with pytest.raises(MergeConflictError, match="conflicting rows"):
            RunTable.merge(a, b)
        merged = RunTable.merge(a, b, overwrite=True)
        assert merged.get(a._records[0].spec_key, 0).steps == 7

    def test_nan_payloads_compare_equal(self):
        record = self._record(seed=0)  # mean_entropy is NaN
        assert record.result_payload() == self._record(seed=0).result_payload()
        assert len(RunTable.merge(RunTable([record]), RunTable([record]))) == 1


# ----------------------------------------------------------------------
# Plan-capture mode
# ----------------------------------------------------------------------
class TestPlanningMode:
    def test_captures_pending_without_executing_or_writing(self, tmp_path):
        with planning() as plans:
            result = run_campaign(_specs(3), out=tmp_path, name="plan")
        assert len(plans) == 1
        assert len(plans[0].pending) == 6 and plans[0].existing_rows == 0
        assert result.executed_trials == 0
        assert result.placeholder_trials == 6
        assert not any(tmp_path.iterdir())  # nothing written
        result.summary("clean")  # placeholder rows keep aggregation working

    def test_planning_is_resume_aware(self, tmp_path):
        run_campaign(_specs(2), out=tmp_path, name="plan")
        with planning() as plans:
            run_campaign(_specs(3), out=tmp_path, name="plan")
        assert plans[0].existing_rows == 4
        assert len(plans[0].pending) == 2  # only the grown seeds

    def test_planning_resume_false_plans_full_grid_without_deleting(self, tmp_path):
        first = run_campaign(_specs(2), out=tmp_path, name="plan")
        with planning() as plans:
            run_campaign(_specs(2), out=tmp_path, name="plan", resume=False)
        assert len(plans[0].pending) == 4
        assert first.csv_path.exists()  # plan mode must not unlink


# ----------------------------------------------------------------------
# Sharded campaign execution
# ----------------------------------------------------------------------
class TestShardedCampaigns:
    def test_shard_union_is_byte_identical_to_serial(self, tmp_path):
        specs = _specs(3)
        serial = run_campaign(specs, out=tmp_path / "serial", name="sh")
        count = 3
        for index in range(1, count + 1):
            result = run_campaign(specs, out=tmp_path / f"shard{index}",
                                  name="sh", shard=Shard(index, count))
            persisted = len(result.table) - result.placeholder_trials
            assert result.executed_trials == persisted
            # plan file saved for the merge's canonical ordering
            assert (tmp_path / f"shard{index}" / "plans" / "sh.json").exists()
        merged = merge_run_tables(
            tmp_path / "merged",
            [tmp_path / f"shard{index}" for index in range(1, count + 1)])
        assert [m.missing_cells for m in merged] == [0]
        assert (tmp_path / "merged" / "sh.csv").read_bytes() == \
            serial.csv_path.read_bytes()
        assert (tmp_path / "merged" / "sh.json").read_bytes() == \
            serial.json_path.read_bytes()

    def test_sequential_shards_into_one_dir_rebuild_the_serial_table(self, tmp_path):
        """Shards resume from the shared table, so running every shard
        against the same out dir converges to the exact serial file."""
        specs = _specs(3)
        serial = run_campaign(specs, out=tmp_path / "serial", name="sh")
        total = 0
        for index in (1, 2):
            with shard_scope(Shard(index, 2)):
                result = run_campaign(specs, out=tmp_path / "acc", name="sh")
            total += result.executed_trials
        assert total == 6
        assert (tmp_path / "acc" / "sh.csv").read_bytes() == \
            serial.csv_path.read_bytes()

    def test_shard_scope_none_is_a_no_op(self, tmp_path):
        with shard_scope(None):
            result = run_campaign(_specs(1), out=tmp_path, name="noop")
        assert result.executed_trials == 2 and result.placeholder_trials == 0


# ----------------------------------------------------------------------
# Work queue
# ----------------------------------------------------------------------
class TestWorkQueue:
    def _queue(self, tmp_path, **kwargs):
        return WorkQueue(tmp_path / "q", **kwargs)

    def test_enqueue_is_idempotent(self, tmp_path):
        queue = self._queue(tmp_path)
        plan = CampaignPlan(name="demo", specs=_specs(4))
        first = queue.enqueue(plan, batch=2)
        assert first.new_tasks == 4 and first.enqueued_cells == 8
        again = queue.enqueue(plan, batch=2)
        assert again.new_tasks == 0 and again.skipped_tasks == 4

    def test_enqueue_rejects_changed_plan_under_same_name(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)))
        with pytest.raises(ValueError, match="different plan"):
            queue.enqueue(CampaignPlan(name="demo", specs=_specs(5)))

    def test_enqueue_rejects_unknown_system_keys(self, tmp_path):
        spec = TrialSpec(condition="x", system="no-such-system",
                         task="wooden", num_trials=1)
        with pytest.raises(ValueError, match="not in the registry"):
            self._queue(tmp_path).enqueue(CampaignPlan(name="demo",
                                                       specs=[spec]))

    def test_reenqueue_with_different_batch_never_drops_cells(self, tmp_path):
        """Batch size is part of the task id: after an interrupted enqueue,
        re-enqueueing with a different --batch must re-cover every cell
        (overlap deduplicates at merge; id collisions would drop cells)."""
        queue = self._queue(tmp_path)
        plan = CampaignPlan(name="demo", specs=_specs(4))  # 8 cells
        queue.enqueue(plan, batch=1)
        for path in sorted(queue.tasks_dir.glob("*.json"))[4:]:
            path.unlink()  # simulate an enqueue interrupted half-way
        queue.enqueue(plan, batch=3)
        covered = set()
        for path in queue.tasks_dir.glob("*.json"):
            data = json.loads(path.read_text())
            covered.update((key, seed) for key, seed, _ in data["cells"])
        assert covered == {(c.spec_key, c.seed) for c in plan.cells()}

    def test_claim_long_after_enqueue_is_not_instantly_reclaimable(self, tmp_path):
        """Claiming must refresh the heartbeat clock: a task enqueued more
        than one TTL ago would otherwise surface as an already-expired
        lease that a concurrent reclaimer could snatch mid-claim."""
        queue = self._queue(tmp_path, lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=4)
        task_path = next(queue.tasks_dir.glob("*.json"))
        stale = time.time() - 1000
        os.utime(task_path, (stale, stale))  # enqueued "long ago"
        task = queue.claim("w1")
        assert task is not None
        assert queue.reclaim_expired() == []  # the fresh lease survives

    def test_enqueue_skips_batches_satisfied_by_a_table(self, tmp_path):
        specs = _specs(2)
        done = run_campaign(specs, out=tmp_path / "done", name="demo")
        queue = self._queue(tmp_path)
        report = queue.enqueue(CampaignPlan(name="demo", specs=specs),
                               batch=1, table=done.table)
        assert report.new_tasks == 0 and report.satisfied_tasks == 4

    def test_claim_complete_lifecycle(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=4)
        task = queue.claim("w1")
        assert task is not None and len(task.cells) == 4
        assert queue.counts() == {"pending": 0, "leased": 1, "done": 0,
                                  "failed": 0}
        owner = json.loads(
            task.lease_path.with_suffix(".owner.json").read_text())
        assert owner["worker"] == "w1" and owner["pid"] == os.getpid()
        assert queue.complete(task)
        assert queue.counts()["done"] == 1
        assert not task.lease_path.with_suffix(".owner.json").exists()
        assert queue.claim("w2") is None  # drained

    def test_cells_rebuild_with_exact_spec_keys(self, tmp_path):
        queue = self._queue(tmp_path)
        specs = _specs(2)
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=8)
        task = queue.claim("w1")
        assert [(c.spec_key, c.seed) for c in task.cells] == \
            [(c.spec_key, c.seed) for c in enumerate_cells(specs)]

    def test_expired_leases_are_reclaimed_once(self, tmp_path):
        queue = self._queue(tmp_path, lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        task = queue.claim("dead-worker")
        assert queue.reclaim_expired() == []  # heartbeat is fresh
        stale = time.time() - 1000
        os.utime(task.lease_path, (stale, stale))  # simulate a dead worker
        assert queue.reclaim_expired() == [task.task_id]
        assert queue.reclaim_expired() == []
        assert task.task_id in queue.pending_ids()
        assert not task.lease_path.with_suffix(".owner.json").exists()

    def test_complete_after_reclaim_reports_loss(self, tmp_path):
        queue = self._queue(tmp_path, lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=4)
        task = queue.claim("slow-worker")
        stale = time.time() - 1000
        os.utime(task.lease_path, (stale, stale))
        queue.reclaim_expired()
        assert queue.complete(task) is False  # informational, not an error

    def test_skewed_but_advancing_heartbeat_survives_reclaim(self, tmp_path):
        """Clock-skew regression: a worker whose clock lags wall-clock
        heartbeats mtimes that *look* expired in absolute terms.  As long
        as the mtime keeps advancing between scans the lease is live and
        must not be reclaimed; once it freezes, it is."""
        queue = self._queue(tmp_path, lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        task = queue.claim("lagging-worker")  # claim records the mtime
        base = task.lease_path.stat().st_mtime
        # Heartbeats from the lagging clock: each advances the mtime a
        # little, but stays a TTL-and-more behind the reclaimer's clock.
        os.utime(task.lease_path, (base + 5, base + 5))
        assert queue.reclaim_expired(now=base + 100) == []
        os.utime(task.lease_path, (base + 10, base + 10))
        assert queue.reclaim_expired(now=base + 200) == []
        # The worker dies; the frozen mtime now reads as truly expired.
        assert queue.reclaim_expired(now=base + 300) == [task.task_id]
        assert task.task_id in queue.pending_ids()

    def test_fresh_reclaimer_falls_back_to_absolute_age(self, tmp_path):
        """A restarted reclaimer has no observation history, so a frozen
        long-expired lease must still be reclaimed on its first scan —
        the advancing-mtime guard is per-instance memory, not a grace
        period for every newcomer."""
        queue = self._queue(tmp_path, lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=_specs(2)), batch=2)
        task = queue.claim("dead-worker")
        stale = time.time() - 1000
        os.utime(task.lease_path, (stale, stale))
        restarted = WorkQueue(tmp_path / "q", lease_ttl=30)
        assert restarted.reclaim_expired() == [task.task_id]


# ----------------------------------------------------------------------
# Worker daemon
# ----------------------------------------------------------------------
class TestWorkerDaemon:
    def test_single_daemon_drains_and_matches_serial(self, tmp_path):
        specs = _specs(3)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=2)
        stats = WorkerDaemon(queue, jobs=1, worker_id="w1").run()
        assert stats.tasks_completed == 3 and stats.cells_executed == 6
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 3,
                                  "failed": 0}
        merge_run_tables(tmp_path / "merged", [queue.root])
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()
        assert (tmp_path / "merged" / "demo.json").read_bytes() == \
            serial.json_path.read_bytes()

    def test_pool_daemon_matches_serial(self, tmp_path):
        specs = _specs(3)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=2)
        stats = WorkerDaemon(queue, jobs=2, worker_id="pool").run()
        assert stats.cells_executed == 6
        merge_run_tables(tmp_path / "merged", [queue.root])
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()

    def test_partial_drain_resumes_with_a_second_daemon(self, tmp_path):
        """Kill-and-restart workflow: a worker stops mid-queue; a later
        worker picks up exactly the remaining tasks."""
        specs = _specs(4)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=2)
        first = WorkerDaemon(queue, worker_id="w1", max_tasks=1).run()
        assert first.tasks_completed == 1
        assert len(queue.pending_ids()) == 3
        second = WorkerDaemon(queue, worker_id="w2").run()
        assert second.tasks_completed == 3
        merge_run_tables(tmp_path / "merged", [queue.root])
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()

    def test_daemon_reclaims_dead_workers_lease_and_reruns_it(self, tmp_path):
        """The cells of an abandoned (SIGKILL'd) lease are re-executed by a
        healthy worker and nothing is lost."""
        specs = _specs(3)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        queue = WorkQueue(tmp_path / "q", lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=2)
        abandoned = queue.claim("dead-worker")  # never heartbeats again
        stale = time.time() - 1000
        os.utime(abandoned.lease_path, (stale, stale))
        stats = WorkerDaemon(queue, worker_id="survivor", wait=True,
                             poll_interval=0.05).run()
        assert stats.leases_reclaimed == 1
        assert stats.cells_executed == 6  # including the reclaimed cells
        merge_run_tables(tmp_path / "merged", [queue.root])
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()

    def test_duplicate_rows_from_lease_loss_merge_away(self, tmp_path):
        """A slow worker finishing after reclamation leaves duplicate rows;
        they are byte-identical and must merge to the serial table."""
        specs = _specs(2)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        queue = WorkQueue(tmp_path / "q", lease_ttl=30)
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=4)

        slow = WorkerDaemon(queue, worker_id="slow")
        task = queue.claim("slow")
        stale = time.time() - 1000
        os.utime(task.lease_path, (stale, stale))
        queue.reclaim_expired()  # lease expires while "slow" is executing
        stats = WorkerStats(worker_id="slow")
        slow._run_inline(task, stats)  # finishes anyway, streams its rows
        assert stats.tasks_lost == 1
        for writers in slow._writers.values():
            for writer in writers:
                writer.close()

        healthy = WorkerDaemon(queue, worker_id="healthy").run()
        assert healthy.cells_executed == 4  # re-ran the reclaimed task
        merged = merge_run_tables(tmp_path / "merged", [queue.root])
        assert merged[0].rows == 4 and merged[0].sources == 2
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()

    def test_inline_failure_parks_task_in_failed(self, tmp_path):
        """A deterministically crashing task must land in failed/ (not stay
        leased), or its reclaimed lease would crash every worker in turn."""
        from repro.agents.registry import (SYSTEM_FACTORIES,
                                           SYSTEM_HAS_PREDICTOR,
                                           register_system)

        def boom():
            raise RuntimeError("broken factory")

        register_system("boom-system", boom, overwrite=True)
        try:
            queue = WorkQueue(tmp_path / "q")
            spec = TrialSpec(condition="x", system="boom-system",
                             task="wooden", num_trials=1)
            queue.enqueue(CampaignPlan(name="demo", specs=[spec]), batch=1)
            with pytest.raises(RuntimeError, match="broken factory"):
                WorkerDaemon(queue, worker_id="w").run()
            assert queue.failed_ids()
            assert not queue.pending_ids() and not queue.lease_ids()
        finally:
            SYSTEM_FACTORIES.pop("boom-system", None)
            SYSTEM_HAS_PREDICTOR.pop("boom-system", None)

    def test_worker_id_includes_host_and_pid(self, tmp_path):
        """Satellite fix: profile attribution must be unambiguous across
        hosts and across successive pools."""
        result = run_campaign(_specs(1), out=tmp_path, name="wid")
        sidecar = RunTable.read_csv(tmp_path / "profiles" / "wid.csv")
        for record in sidecar:
            assert socket.gethostname() in record.worker_id
            assert str(os.getpid()) in record.worker_id


# ----------------------------------------------------------------------
# Real processes: two concurrent CLI workers, one SIGKILL'd mid-lease
# ----------------------------------------------------------------------
class TestDistributedProcesses:
    def test_two_workers_with_sigkill_match_serial(self, tmp_path,
                                                   jarvis_system):
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        specs = _specs(3)
        serial = run_campaign(specs, out=tmp_path / "serial", name="demo")
        queue = WorkQueue(tmp_path / "q", lease_ttl=60)
        queue.enqueue(CampaignPlan(name="demo", specs=specs), batch=1)

        def worker(worker_id, extra=()):
            return subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker", "--queue",
                 str(queue.root), "--id", worker_id, "--lease-ttl", "60",
                 *extra],
                env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True)

        victim = worker("victim")
        deadline = time.time() + 120
        while time.time() < deadline and not queue.lease_ids():
            time.sleep(0.02)
        assert queue.lease_ids(), "victim never claimed a lease"
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()

        # Expire the orphaned lease immediately instead of waiting the TTL.
        stale = time.time() - 1000
        for lease_id in queue.lease_ids():
            os.utime(queue.leases_dir / f"{lease_id}.json", (stale, stale))

        survivors = [worker(f"survivor-{i}", extra=("--wait", "--poll", "0.2"))
                     for i in (1, 2)]
        outputs = [proc.communicate(timeout=240)[0] for proc in survivors]
        assert all(proc.returncode == 0 for proc in survivors), outputs
        assert any("re-queued" in output for output in outputs), outputs

        merged = merge_run_tables(tmp_path / "merged", [queue.root])
        assert merged[0].missing_cells == 0
        assert (tmp_path / "merged" / "demo.csv").read_bytes() == \
            serial.csv_path.read_bytes()
        assert not queue.pending_ids() and not queue.lease_ids()
