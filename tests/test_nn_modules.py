"""Tests for layers, containers and parameter management."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    RMSNorm,
    Sequential,
    Sigmoid,
    SiLU,
    Softmax,
    Tanh,
    Tensor,
)
from repro.nn import functional as F


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(6, 4, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)

    def test_no_bias(self, rng):
        layer = Linear(6, 4, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_matches_manual_computation(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([7]))

    def test_gradient_flows_to_rows(self, rng):
        emb = Embedding(6, 3, rng=rng)
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        assert emb.weight.grad[2].sum() == pytest.approx(6.0)
        assert emb.weight.grad[4].sum() == pytest.approx(3.0)
        assert emb.weight.grad[0].sum() == pytest.approx(0.0)


class TestNorms:
    def test_layer_norm_statistics(self, rng):
        norm = LayerNorm(16)
        out = norm(Tensor(rng.normal(size=(4, 16)) * 5.0 + 2.0)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_rms_norm_unit_rms(self, rng):
        norm = RMSNorm(8)
        out = norm(Tensor(rng.normal(size=(5, 8)) * 3.0)).data
        rms = np.sqrt((out ** 2).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_rms_norm_matches_functional(self, rng):
        norm = RMSNorm(8)
        x = rng.normal(size=(2, 8))
        np.testing.assert_allclose(norm(Tensor(x)).data,
                                   F.rms_norm(x, np.ones(8)), atol=1e-9)

    def test_layer_norm_matches_functional(self, rng):
        norm = LayerNorm(8)
        x = rng.normal(size=(2, 8))
        np.testing.assert_allclose(norm(Tensor(x)).data,
                                   F.layer_norm(x, np.ones(8), np.zeros(8)), atol=1e-9)


class TestActivations:
    @pytest.mark.parametrize("module,reference", [
        (ReLU(), F.relu),
        (SiLU(), F.silu),
        (Sigmoid(), F.sigmoid),
        (GELU(), F.gelu),
    ])
    def test_matches_functional(self, module, reference, rng):
        x = rng.normal(size=(3, 7))
        np.testing.assert_allclose(module(Tensor(x)).data, reference(x), atol=1e-9)

    def test_tanh(self, rng):
        x = rng.normal(size=(4,))
        np.testing.assert_allclose(Tanh()(Tensor(x)).data, np.tanh(x))

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax()(Tensor(rng.normal(size=(5, 9)))).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_allclose(drop(Tensor(x)).data, x)

    def test_train_mode_zeroes_some(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        out = drop(Tensor(np.ones((50, 50)))).data
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestContainers:
    def test_sequential_forward(self, rng):
        net = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert net(Tensor(rng.normal(size=(3, 4)))).shape == (3, 2)
        assert len(net) == 3

    def test_sequential_indexing_and_append(self, rng):
        net = Sequential(Linear(4, 4, rng=rng))
        net.append(ReLU())
        assert isinstance(net[1], ReLU)

    def test_module_list(self, rng):
        modules = ModuleList([Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(modules) == 3
        assert len(list(modules[0].parameters())) == 2
        with pytest.raises(RuntimeError):
            modules(Tensor(np.ones((1, 2))))

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 12)


class TestModuleBase:
    def test_named_parameters_are_hierarchical(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        names = dict(net.named_parameters())
        assert "0.weight" in names and "1.bias" in names

    def test_num_parameters(self, rng):
        layer = Linear(4, 5, rng=rng)
        assert layer.num_parameters() == 4 * 5 + 5

    def test_state_dict_roundtrip(self, rng):
        a = Linear(4, 4, rng=np.random.default_rng(1))
        b = Linear(4, 4, rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        a = Linear(4, 4, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((4, 4))})
        with pytest.raises(ValueError):
            a.load_state_dict({"weight": np.zeros((2, 2)), "bias": np.zeros(4)})

    def test_train_eval_propagates(self, rng):
        net = Sequential(Dropout(0.3), Linear(2, 2, rng=rng))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 3, rng=rng)
        layer(Tensor(rng.normal(size=(2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_custom_module_registration(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.scale = Parameter(np.ones(3))

            def forward(self, x):
                return x * self.scale

        module = Custom()
        assert dict(module.named_parameters())["scale"].shape == (3,)


class TestFunctional:
    def test_softmax_stability(self):
        out = F.softmax(np.array([1000.0, 1000.0, 1000.0]))
        np.testing.assert_allclose(out, [1 / 3] * 3)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)), atol=1e-9)

    def test_entropy_uniform_is_max(self):
        probs = np.full(8, 1 / 8)
        assert F.entropy(probs) == pytest.approx(np.log(8))

    def test_entropy_deterministic_is_zero(self):
        probs = np.zeros(8)
        probs[0] = 1.0
        assert F.entropy(probs) == pytest.approx(0.0, abs=1e-9)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_cosine_similarity(self):
        assert F.cosine_similarity(np.ones(4), np.ones(4)) == pytest.approx(1.0)
        assert F.cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)
