"""Shared fixtures: trained systems are built once per session (and cached on disk)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import build_jarvis_system
from repro.env import MINECRAFT_SUBTASKS, MINECRAFT_SUITE, EmbodiedWorld, WorldConfig


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def jarvis_system():
    """JARVIS-1-style system without weight rotation (planner outliers intact)."""
    return build_jarvis_system(rotate_planner=False, with_predictor=True)


@pytest.fixture(scope="session")
def jarvis_system_rotated():
    """JARVIS-1-style system with weight-rotation-enhanced planning."""
    return build_jarvis_system(rotate_planner=True, with_predictor=True)


@pytest.fixture(scope="session")
def jarvis_executor(jarvis_system):
    return jarvis_system.executor()


@pytest.fixture(scope="session")
def deployed_planner(jarvis_system):
    return jarvis_system.planner


@pytest.fixture(scope="session")
def deployed_controller(jarvis_system):
    return jarvis_system.controller


@pytest.fixture()
def wooden_world(rng) -> EmbodiedWorld:
    """A fresh world running the ``wooden`` task."""
    return EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS,
                         WorldConfig(), rng)
