"""Fleet-runtime equivalence and metrics tests.

The fleet runtime (``src/repro/agents/fleet.py``) is level 4 of the batched
runtime: N agents stepping against one shared mission suite, all pending
planner decodes and controller forwards gathered per tick into row-stacked
:class:`~repro.quant.BatchedKernel` passes.  The contract under test is the
same as every other batching level — **bit-identical** to the per-agent
serial loop, fault-free and under injection — plus the campaign-facing
guarantees: the ``fleet`` axis never changes run-table bytes, spec keys, or
resume identity.
"""

from __future__ import annotations

import csv
import dataclasses

import pytest

from repro.agents import FleetExecutor, MAX_FLEET_SIZE
from repro.core import ProtectionConfig
from repro.eval import RunTable, TrialSpec, run_campaign
from repro.eval.runtable import record_from_trial
from repro.eval.scheduler import spec_from_dict, spec_to_dict
from repro.faults import UniformErrorModel


@pytest.fixture(scope="module")
def fleet():
    return FleetExecutor()


def _protection(ber: float = 1e-3) -> ProtectionConfig:
    return ProtectionConfig(error_model=UniformErrorModel(ber))


def assert_trials_identical(batched, serial):
    """Field-for-field equality, including entropy-trace contents."""
    for lane, (b, s) in enumerate(zip(batched, serial)):
        for field in dataclasses.fields(b):
            bv, sv = getattr(b, field.name), getattr(s, field.name)
            if field.name == "entropy_trace":
                assert bv.entropies == sv.entropies, f"lane {lane}"
                assert bv.critical_flags == sv.critical_flags, f"lane {lane}"
                assert bv.voltages == sv.voltages, f"lane {lane}"
            else:
                assert bv == sv, f"lane {lane}: {field.name}"
    assert len(batched) == len(serial)


class TestFleetBitIdentity:
    """Level 4: fleet-batched stepping == N per-agent serial loops."""

    def test_fault_free_identical(self, fleet):
        batched = fleet.run_fleet(6, seed=3, batched=True)
        serial = fleet.run_fleet(6, seed=3, batched=False)
        assert batched.roster == serial.roster
        assert_trials_identical(batched.results, serial.results)

    def test_injected_identical(self, fleet):
        protection = _protection()
        kwargs = dict(planner_protection=protection,
                      controller_protection=protection)
        batched = fleet.run_fleet(6, seed=3, batched=True, **kwargs)
        serial = fleet.run_fleet(6, seed=3, batched=False, **kwargs)
        assert batched.bits_flipped > 0
        assert_trials_identical(batched.results, serial.results)

    def test_run_table_rows_identical(self, fleet):
        """The payloads campaigns persist match row for row."""
        protection = _protection()
        kwargs = dict(planner_protection=protection,
                      controller_protection=protection)

        def payloads(result):
            return [record_from_trial(
                        trial, spec_key="k", condition="c", system="jarvis",
                        task=agent.task, seed=agent.seed,
                        trial_index=agent.agent_id).result_payload()
                    for agent, trial in zip(result.roster, result.results)]

        batched = fleet.run_fleet(5, seed=7, batched=True, **kwargs)
        serial = fleet.run_fleet(5, seed=7, batched=False, **kwargs)
        assert payloads(batched) == payloads(serial)


class TestFleetRoster:
    def test_round_robin_tasks_and_disjoint_seeds(self, fleet):
        tasks = fleet.executor.suite.task_names
        roster = fleet.roster(2 * len(tasks) + 1, seed=10)
        assert [agent.task for agent in roster[:len(tasks)]] == list(tasks)
        assert [agent.task for agent in roster[len(tasks):2 * len(tasks)]] \
            == list(tasks)
        seeds = [agent.seed for agent in roster]
        assert seeds == list(range(10, 10 + len(roster)))
        assert len(set(seeds)) == len(seeds)

    def test_fleet_size_bounds(self, fleet):
        with pytest.raises(ValueError, match="fleet size"):
            fleet.roster(0)
        with pytest.raises(ValueError, match="fleet size"):
            fleet.roster(MAX_FLEET_SIZE + 1)


class TestFleetMetrics:
    def test_aggregates_roll_up_per_agent_results(self, fleet):
        result = fleet.run_fleet(4, seed=1)
        assert result.missions_completed == \
            sum(1 for r in result.results if r.success)
        assert result.agent_steps == sum(r.steps for r in result.results)
        assert result.controller_steps == \
            sum(r.controller_steps for r in result.results)
        assert result.planner_invocations == \
            sum(r.planner_invocations for r in result.results)
        assert result.mission_success_rate == result.missions_completed / 4

    def test_summary_is_flat_and_complete(self, fleet):
        summary = fleet.run_fleet(3, seed=2).summary()
        assert set(summary) == {"fleet_size", "missions_completed",
                                "mission_success_rate", "agent_steps",
                                "controller_steps", "planner_invocations",
                                "bits_flipped"}
        assert all(isinstance(value, float) for value in summary.values())
        assert summary["fleet_size"] == 3.0


class TestTrialSpecFleetAxis:
    def _spec(self, fleet: int = 1) -> TrialSpec:
        return TrialSpec(condition="c", system="jarvis", task="wooden",
                         num_trials=4, seed=0, fleet=fleet)

    def test_fleet_bounds_validated(self):
        with pytest.raises(ValueError, match="fleet size"):
            self._spec(fleet=0)
        with pytest.raises(ValueError, match="fleet size"):
            self._spec(fleet=MAX_FLEET_SIZE + 1)

    def test_fleet_never_changes_the_signature(self):
        """Execution shape must not invalidate resume: same cells, same key."""
        assert self._spec(fleet=4).signature() == self._spec().signature()

    def test_scheduler_codec_round_trips_fleet(self):
        spec = self._spec(fleet=8)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_scheduler_codec_defaults_legacy_specs_to_one(self):
        data = spec_to_dict(self._spec())
        del data["fleet"]
        assert spec_from_dict(data).fleet == 1


class TestCampaignFleetPath:
    """The campaign fleet path is byte-identical to scalar execution."""

    def _specs(self, fleet: int):
        return [
            TrialSpec(condition="clean", system="jarvis", task="wooden",
                      num_trials=4, seed=0, fleet=fleet),
            TrialSpec(condition="faulty", system="jarvis", task="wooden",
                      num_trials=4, seed=0, fleet=fleet,
                      controller_protection=_protection(),
                      params=(("ber", "1e-3"),)),
        ]

    @staticmethod
    def _profile_rows(out_dir, name):
        with open(out_dir / "profiles" / f"{name}.csv", newline="") as handle:
            return list(csv.DictReader(handle))

    def test_fleet_campaign_byte_identical_to_scalar(self, tmp_path):
        fleet = run_campaign(self._specs(fleet=4), out=tmp_path / "fleet",
                             name="f")
        scalar = run_campaign(self._specs(fleet=1), out=tmp_path / "scalar",
                              name="f", vector=False)
        assert fleet.csv_path.read_bytes() == scalar.csv_path.read_bytes()
        assert fleet.json_path.read_bytes() == scalar.json_path.read_bytes()

        rows = self._profile_rows(tmp_path / "fleet", "f")
        assert {(r["vector_path"], r["batch_size"], r["fleet_size"])
                for r in rows} == {("fleet", "4", "4")}
        scalar_rows = self._profile_rows(tmp_path / "scalar", "f")
        assert {(r["vector_path"], r["fleet_size"]) for r in scalar_rows} == \
            {("scalar", "1")}

    def test_fleet_chunks_oversized_cells(self, tmp_path):
        """num_trials > fleet splits into fleet-sized groups, same bytes."""
        spec = TrialSpec(condition="c", system="jarvis", task="wooden",
                         num_trials=5, seed=0, fleet=2)
        fleet = run_campaign([spec], out=tmp_path / "fleet", name="f")
        scalar = run_campaign([dataclasses.replace(spec, fleet=1)],
                              out=tmp_path / "scalar", name="f", vector=False)
        assert fleet.csv_path.read_bytes() == scalar.csv_path.read_bytes()
        rows = self._profile_rows(tmp_path / "fleet", "f")
        # 5 trials at fleet=2 -> two fleet groups of 2 plus a scalar remainder.
        assert sorted((r["vector_path"], r["batch_size"]) for r in rows) == \
            [("fleet", "2")] * 4 + [("scalar", "1")]
        assert {r["fleet_size"] for r in rows} == {"2"}

    def test_canonical_table_free_of_fleet_columns(self, tmp_path):
        result = run_campaign(self._specs(fleet=2)[:1], out=tmp_path, name="c")
        header = result.csv_path.read_text().splitlines()[0]
        assert "fleet_size" not in header
        table = RunTable.read_csv(result.csv_path)
        assert all(r.fleet_size == 0 for r in table)
