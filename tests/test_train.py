"""Tests for optimizers, losses, datasets and the trainer loop."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential, Tensor
from repro.nn.module import Parameter
from repro.train import (
    Adam,
    AdamW,
    ArrayDataset,
    DataLoader,
    SGD,
    Trainer,
    binary_cross_entropy,
    clip_grad_norm,
    cross_entropy_loss,
    huber_loss,
    mse_loss,
    train_test_split,
)


class TestOptimizers:
    def _quadratic_parameter(self):
        return Parameter(np.array([4.0, -3.0]))

    def _step_many(self, optimizer, param, steps=200):
        for _ in range(steps):
            optimizer.zero_grad()
            param.grad = 2.0 * param.data  # gradient of ||x||^2
            optimizer.step()
        return np.abs(param.data).max()

    def test_sgd_converges(self):
        param = self._quadratic_parameter()
        assert self._step_many(SGD([param], lr=0.1), param) < 1e-3

    def test_sgd_momentum_converges(self):
        param = self._quadratic_parameter()
        assert self._step_many(SGD([param], lr=0.05, momentum=0.9), param) < 1e-3

    def test_adam_converges(self):
        param = self._quadratic_parameter()
        assert self._step_many(Adam([param], lr=0.1), param) < 1e-2

    def test_adamw_decays_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = AdamW([param], lr=1e-2, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            param.grad = np.zeros(1)
            optimizer.step()
        assert abs(param.data[0]) < 1.0

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=1e-3)

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no grad set; should not crash or move
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_clip_grad_norm(self):
        params = [Parameter(np.ones(3)) for _ in range(2)]
        for p in params:
            p.grad = np.full(3, 10.0)
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert total == pytest.approx(1.0, rel=1e-6)


class TestLosses:
    def test_mse_zero_for_equal(self, rng):
        x = rng.normal(size=(4, 3))
        assert mse_loss(Tensor(x), x).item() == pytest.approx(0.0)

    def test_mse_value(self):
        loss = mse_loss(Tensor(np.array([2.0, 0.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_cross_entropy_prefers_correct_class(self):
        good = cross_entropy_loss(Tensor(np.array([[5.0, 0.0, 0.0]])), np.array([0]))
        bad = cross_entropy_loss(Tensor(np.array([[5.0, 0.0, 0.0]])), np.array([2]))
        assert good.item() < bad.item()

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy_loss(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_huber_small_residual_quadratic(self):
        loss = huber_loss(Tensor(np.array([0.5])), np.array([0.0]))
        assert loss.item() == pytest.approx(0.125, rel=1e-3)

    def test_binary_cross_entropy_bounds(self):
        probs = Tensor(np.array([0.9, 0.1]))
        targets = np.array([1.0, 0.0])
        assert binary_cross_entropy(probs, targets).item() < 0.2


class TestData:
    def test_dataset_length_and_indexing(self, rng):
        ds = ArrayDataset(rng.normal(size=(10, 3)), np.arange(10))
        assert len(ds) == 10
        x, y = ds[np.array([1, 2])]
        assert x.shape == (2, 3) and y.tolist() == [1, 2]

    def test_dataset_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 2)), np.zeros(4))

    def test_dataset_empty_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_loader_covers_all_examples(self, rng):
        ds = ArrayDataset(np.arange(10).reshape(10, 1))
        loader = DataLoader(ds, batch_size=3, shuffle=True, rng=rng)
        seen = sorted(int(v) for batch in loader for v in batch[0].ravel())
        assert seen == list(range(10))
        assert len(loader) == 4

    def test_loader_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.zeros((4, 1))), batch_size=0)

    def test_train_test_split(self, rng):
        ds = ArrayDataset(np.arange(20).reshape(20, 1))
        train, test = train_test_split(ds, test_fraction=0.25, rng=rng)
        assert len(train) == 15 and len(test) == 5

    def test_train_test_split_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(ArrayDataset(np.zeros((4, 1))), test_fraction=1.5)


class TestTrainer:
    def _make_regression(self, rng, n=64):
        x = rng.normal(size=(n, 4))
        w = rng.normal(size=(4, 2))
        y = x @ w
        return x, y

    def test_loss_decreases(self, rng):
        x, y = self._make_regression(rng)
        model = Sequential(Linear(4, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2), mse_loss)
        result = trainer.fit(DataLoader(ArrayDataset(x, y), batch_size=16, rng=rng), epochs=15)
        assert result.final_loss < result.epoch_losses[0]
        assert result.converged(result.epoch_losses[0])

    def test_evaluate_returns_mean_loss(self, rng):
        x, y = self._make_regression(rng, n=32)
        model = Linear(4, 2, rng=rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=1e-3), mse_loss)
        loader = DataLoader(ArrayDataset(x, y), batch_size=8, rng=rng)
        value = trainer.evaluate(loader)
        assert np.isfinite(value) and value > 0

    def test_invalid_epochs(self, rng):
        model = Linear(2, 1, rng=rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=1e-3), mse_loss)
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(ArrayDataset(np.zeros((4, 2)), np.zeros((4, 1)))), epochs=0)

    def test_training_result_requires_epochs(self):
        from repro.train import TrainingResult

        with pytest.raises(ValueError):
            TrainingResult().final_loss
