"""Tests for the entropy predictor (training, accuracy, deployment wrapper)."""

import numpy as np
import pytest

from repro.agents import get_predictor_network
from repro.core import (
    EntropyPredictor,
    EntropyPredictorNetwork,
    PredictorConfig,
    build_predictor_dataset,
    evaluate_predictor,
)
from repro.env import IMAGE_SHAPE, MINECRAFT_SUBTASKS, MINECRAFT_SUITE
from repro.nn import no_grad


class TestPredictorNetwork:
    def test_forward_shape(self, rng):
        network = EntropyPredictorNetwork(PredictorConfig())
        images = rng.random((3, *IMAGE_SHAPE))
        prompts = np.zeros((3, PredictorConfig().prompt_dim))
        with no_grad():
            out = network(images, prompts)
        assert out.shape == (3, 1)

    def test_num_macs_positive(self):
        assert EntropyPredictorNetwork().num_macs() > 1000


class TestPredictorData:
    def test_dataset_targets_are_entropies(self, deployed_controller):
        images, prompts, targets = build_predictor_dataset(
            deployed_controller, MINECRAFT_SUITE, MINECRAFT_SUBTASKS, num_episodes=1, seed=3)
        assert images.shape[1:] == IMAGE_SHAPE
        assert prompts.shape[1] == PredictorConfig().prompt_dim
        assert targets.min() >= 0.0
        assert targets.max() <= np.log(12) + 1e-6
        # one-hot prompts
        np.testing.assert_allclose(prompts.sum(axis=1), 1.0)


class TestTrainedPredictor:
    def test_cached_predictor_correlates_with_truth(self, deployed_controller, jarvis_system):
        network = get_predictor_network("jarvis")
        images, prompts, targets = build_predictor_dataset(
            deployed_controller, MINECRAFT_SUITE, MINECRAFT_SUBTASKS, num_episodes=2, seed=51)
        metrics = evaluate_predictor(network, images, prompts, targets)
        assert metrics["r2"] > 0.5
        assert metrics["mse"] < 0.5

    def test_predictor_wrapper_scalar_output(self, jarvis_system, wooden_world):
        predictor = jarvis_system.predictor
        wooden_world.set_subtask("mine_logs")
        value = predictor.predict(wooden_world.observation_image(), 0)
        assert np.isfinite(value)
        assert predictor.macs_per_call > 0

    def test_predictor_separates_phases(self, jarvis_system):
        """Predicted entropy should be lower for critical (execution) frames."""
        from repro.env import EmbodiedWorld, WorldConfig

        predictor = jarvis_system.predictor
        world = EmbodiedWorld(MINECRAFT_SUITE.get("wooden"), MINECRAFT_SUBTASKS,
                              WorldConfig(), np.random.default_rng(4))
        world.set_subtask("mine_logs")
        from repro.env import ALL_SUBTASKS

        exploration = predictor.predict(world.observation_image(),
                                        ALL_SUBTASKS.token_id("mine_logs"))
        world.inventory.add("mine_logs")
        world.set_subtask("craft_planks")
        execution = predictor.predict(world.observation_image(),
                                      ALL_SUBTASKS.token_id("craft_planks"))
        assert execution < exploration
